"""Resilient campaign orchestration: journal, taxonomy, graceful stop.

A *campaign* is the paper's pipeline at full scale — thousands of
workload runs across machines and sweeps, hours of wall clock.  At that
scale three things go wrong that a single ``characterize_suite`` call
historically could not survive: a workload error aborted the whole
batch, a killed writer left poison in the stores, and an interrupt
threw away everything completed so far.  This module supplies the
campaign-level pieces; the pool (:mod:`repro.exec.pool`), stores
(:mod:`repro.exec.store`, :mod:`repro.exec.traces`) and harness
(:mod:`repro.harness.suite`) supply the per-layer mechanics.

Error taxonomy
    :func:`classify_error` splits failures into **transient**
    (worker crash, timeout, ``OSError`` — infrastructure weather,
    worth retrying) and **permanent** (deterministic model errors such
    as ``OutOfManagedMemory`` — retrying reproduces them).  The pool
    retries transient failures with backoff; permanent ones become
    :class:`WorkloadFailure` records immediately.

Failure records
    :class:`WorkloadFailure` is the structured, JSON-serializable
    capture of one failed workload: error class, message, traceback,
    attempt count, worker fate, classification.  It flows through
    ``SuiteResult.failures`` into reports, the CLI summary, and the
    manifest — the run *degrades* instead of aborting.

Campaign manifest
    :class:`CampaignManifest` is an append-only JSONL journal of job
    keys and outcomes, flushed and fsync'd per record so a crash or
    SIGKILL loses at most the in-flight line (a torn tail is tolerated
    on load).  The content-addressed result store makes re-running
    completed work cheap; the manifest makes resuming *correct*: it
    records skips, failures, and config-fingerprint mismatches, so
    ``--resume`` re-attempts transient failures, skips deterministic
    ones, and never silently mixes results from two source trees.

Graceful shutdown
    :func:`graceful_shutdown` converts the first SIGINT/SIGTERM into a
    stop flag the pool polls (finish in-flight bookkeeping, journal,
    exit resumable); a second signal hard-interrupts.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import threading

try:
    import fcntl
except ImportError:          # non-POSIX: append locking degrades
    fcntl = None
import traceback as tb_mod
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.exec.pool import JobFailure, JobTimeout, WorkerCrash

MANIFEST_VERSION = 1

TRANSIENT = "transient"
PERMANENT = "permanent"

#: infrastructure weather: retrying is worthwhile
TRANSIENT_ERRORS = (WorkerCrash, JobTimeout, OSError)


def classify_error(error: BaseException | type) -> str:
    """``"transient"`` (crash/timeout/OSError) or ``"permanent"``.

    The simulator is deterministic, so any exception it raises itself
    (model errors, bad configs) reproduces on retry — permanent.  Only
    infrastructure failures are worth re-attempting.
    """
    cls = error if isinstance(error, type) else type(error)
    return TRANSIENT if issubclass(cls, TRANSIENT_ERRORS) else PERMANENT


@dataclass
class WorkloadFailure:
    """Structured record of one failed workload run."""

    name: str
    error_type: str
    message: str
    classification: str
    attempts: int = 1
    key: str | None = None
    traceback: str = ""
    #: "crashed" (worker died), "killed" (timeout), "completed" (the
    #: worker survived and reported the exception)
    worker_fate: str = "completed"
    #: the live exception when available (not serialized)
    error: BaseException | None = field(default=None, repr=False,
                                        compare=False)

    @classmethod
    def from_job_failure(cls, failure: JobFailure,
                         key: str | None = None) -> "WorkloadFailure":
        err = failure.error
        if isinstance(err, WorkerCrash):
            fate = "crashed"
        elif isinstance(err, JobTimeout):
            fate = "killed"
        else:
            fate = "completed"
        tb = "".join(tb_mod.format_exception(
            type(err), err, err.__traceback__)).strip()
        return cls(name=failure.job.name,
                   error_type=type(err).__name__,
                   message=str(err),
                   classification=classify_error(err),
                   attempts=failure.attempts,
                   key=key, traceback=tb, worker_fate=fate, error=err)

    def to_json(self) -> dict:
        return {"name": self.name, "error_type": self.error_type,
                "message": self.message,
                "classification": self.classification,
                "attempts": self.attempts, "key": self.key,
                "traceback": self.traceback,
                "worker_fate": self.worker_fate}

    @classmethod
    def from_json(cls, data: dict) -> "WorkloadFailure":
        return cls(name=data["name"], error_type=data["error_type"],
                   message=data.get("message", ""),
                   classification=data.get("classification", PERMANENT),
                   attempts=data.get("attempts", 1),
                   key=data.get("key"),
                   traceback=data.get("traceback", ""),
                   worker_fate=data.get("worker_fate", "completed"))


class CampaignInterrupted(RuntimeError):
    """A campaign stopped early on a shutdown request; it is resumable."""

    def __init__(self, manifest_path: Path | None, completed: int,
                 failed: int, remaining: int):
        hint = (f"; resume with --resume {manifest_path}"
                if manifest_path else "")
        super().__init__(
            f"campaign interrupted: {completed} done, {failed} failed, "
            f"{remaining} unfinished{hint}")
        self.manifest_path = manifest_path
        self.completed = completed
        self.failed = failed
        self.remaining = remaining


class CampaignManifest:
    """Append-only JSONL journal of campaign outcomes.

    One header line (``type: campaign``), then one ``type: outcome``
    line per settled job — ``status`` is ``done``, ``failed``, or
    ``skipped`` (a permanent failure carried over from a previous
    attempt).  Every append is flushed and fsync'd; loading tolerates a
    torn final line, so a SIGKILL mid-write costs exactly one record.

    Appends take a short exclusive ``flock`` on the journal, so a
    second appender — the fabric coordinator's lease reclaim racing a
    slow worker's late completion — cannot interleave bytes inside one
    record.  Outcome records may carry a fabric work-unit id
    (``unit``); :meth:`record` refuses to journal the *same* unit twice
    (the duplicate-completion guard, mirroring the pool's
    ``index in done`` check), so a reclaimed-then-re-executed unit
    settles exactly once no matter how late the original worker reports.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header: dict | None = None
        self.records: list[dict] = []
        #: fabric work-unit ids that already settled (dup-completion guard)
        self._units_seen: set[str] = set()
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue        # torn tail from a killed writer
            if rec.get("type") == "campaign" and self.header is None:
                self.header = rec
            else:
                self.records.append(rec)
                if rec.get("type") == "outcome" and rec.get("unit"):
                    self._units_seen.add(rec["unit"])

    def _append(self, rec: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(fh, fcntl.LOCK_UN)

    def begin(self, fingerprint: str, total: int | None = None,
              meta: dict | None = None) -> None:
        """Start (or resume) journaling under ``fingerprint``.

        Resuming against a different source tree records a
        ``fingerprint-mismatch`` event and discards the prior outcome
        view — every old key is stale by construction (keys embed the
        fingerprint), so nothing recorded before can be trusted as done.
        """
        if self.header is not None:
            recorded = self.header.get("fingerprint")
            if recorded != fingerprint:
                self.records = []
                self._append({"type": "fingerprint-mismatch",
                              "recorded": recorded,
                              "current": fingerprint})
                self.header["fingerprint"] = fingerprint
            else:
                self._append({"type": "resume"})
                obs.add("campaign.resumes")
            return
        self.header = {"type": "campaign", "version": MANIFEST_VERSION,
                       "fingerprint": fingerprint, "total": total,
                       **(meta or {})}
        self._append(self.header)

    def record(self, key: str | None, name: str, status: str,
               failure: WorkloadFailure | None = None,
               unit: str | None = None) -> bool:
        """Journal one settled outcome; returns whether it was appended.

        ``unit`` is the fabric work-unit id when the outcome came
        through the distributed path; a unit that already settled is
        silently dropped (``False``) — the duplicate-completion guard
        for a coordinator reclaim racing a slow worker.
        """
        if unit is not None:
            if unit in self._units_seen:
                obs.add("campaign.duplicate_completions")
                return False
            self._units_seen.add(unit)
        rec = {"type": "outcome", "key": key, "name": name,
               "status": status}
        if unit is not None:
            rec["unit"] = unit
        if failure is not None:
            rec["failure"] = failure.to_json()
        self.records.append(rec)
        self._append(rec)
        obs.add(f"campaign.outcomes_{status}")
        return True

    def record_event(self, kind: str, **fields) -> None:
        self._append({"type": kind, **fields})

    # -- read-side views -----------------------------------------------

    def outcomes(self) -> dict[str, dict]:
        """Latest outcome record per job key (later records win)."""
        latest: dict[str, dict] = {}
        for rec in self.records:
            if rec.get("type") == "outcome" and rec.get("key"):
                latest[rec["key"]] = rec
        return latest

    def done_keys(self) -> set[str]:
        return {k for k, r in self.outcomes().items()
                if r.get("status") == "done"}

    def failure_records(self) -> dict[str, WorkloadFailure]:
        """Keys whose *latest* outcome is a failure (or carried skip)."""
        out: dict[str, WorkloadFailure] = {}
        for key, rec in self.outcomes().items():
            if rec.get("status") in ("failed", "skipped") \
                    and "failure" in rec:
                out[key] = WorkloadFailure.from_json(rec["failure"])
        return out

    def all_failures(self) -> list[WorkloadFailure]:
        """Every failure ever journaled (including later-recovered ones)."""
        return [WorkloadFailure.from_json(rec["failure"])
                for rec in self.records
                if rec.get("type") == "outcome" and "failure" in rec]

    def __repr__(self) -> str:
        return f"CampaignManifest({str(self.path)!r})"


@contextlib.contextmanager
def graceful_shutdown(signals=(signal.SIGINT, signal.SIGTERM)):
    """Install two-stage signal handling; yields the stop event.

    The first signal sets the event — the pool finishes bookkeeping,
    the campaign journals and raises :class:`CampaignInterrupted`.  A
    second signal raises ``KeyboardInterrupt`` immediately (the
    operator really means it).  Handlers are restored on exit.
    """
    stop = threading.Event()

    def handler(signum, frame):
        if stop.is_set():
            raise KeyboardInterrupt
        stop.set()

    previous = {}
    for sig in signals:
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):   # non-main thread / unsupported
            pass
    try:
        yield stop
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
