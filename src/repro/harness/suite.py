"""Suite-level orchestration: characterize many workloads, build matrices.

A suite run is the unit the paper's campaigns are built from, so this
layer carries the campaign failure model: ``on_error`` selects whether
a failed workload aborts the batch (``"raise"``, the historical
default), degrades into a structured :class:`WorkloadFailure` record on
``SuiteResult.failures`` (``"skip"``), or gets transient-failure
retries with backoff before degrading (``"retry"``).  A
:class:`~repro.exec.campaign.CampaignManifest` journals every settled
job, and ``should_stop`` (typically wired to SIGINT via
:func:`~repro.exec.campaign.graceful_shutdown`) stops the run early
with a resumable :class:`~repro.exec.campaign.CampaignInterrupted`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import MetricMatrix, metric_vector
from repro.harness.runner import Fidelity, RunResult
from repro.uarch.machine import MachineConfig
from repro.workloads.spec import WorkloadSpec


@dataclass
class SuiteResult:
    """All runs of one suite on one machine.

    ``failures`` holds the structured records of workloads that did not
    produce a result (only populated under ``on_error="skip"|"retry"``
    or on resume); ``results`` holds the successes, in spec order.
    """

    machine: MachineConfig
    results: list[RunResult] = field(default_factory=list)
    failures: list = field(default_factory=list)
    #: lazily built name -> RunResult index (first occurrence wins, like
    #: the linear scan it replaces); rebuilt when ``results`` grows
    _index: dict[str, RunResult] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def names(self) -> list[str]:
        return [r.spec.name for r in self.results]

    @property
    def ok(self) -> bool:
        return not self.failures

    def metric_matrix(self) -> MetricMatrix:
        return MetricMatrix(
            self.names,
            np.vstack([metric_vector(r.counters) for r in self.results]),
            [r.spec.suite for r in self.results])

    def times(self) -> dict[str, float]:
        """Per-workload simulated seconds (for §IV-C score validation).

        All runs execute the same instruction budget, so seconds is
        time-per-fixed-work: ratios between machines are SPECspeed-style
        speedups, and for throughput suites the inverse ratio is the
        throughput ratio — the same score either way.
        """
        return {r.spec.name: r.seconds for r in self.results}

    def result_of(self, name: str) -> RunResult:
        # Subset validation calls this in a loop over the full corpus;
        # an O(n) scan per lookup made that quadratic.
        if self._index is None or len(self._index) < len(self.results):
            index: dict[str, RunResult] = {}
            for r in self.results:
                index.setdefault(r.spec.name, r)
            self._index = index
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(name) from None


def characterize_suite(specs: list[WorkloadSpec], machine: MachineConfig,
                       fidelity: Fidelity | None = None, seed: int = 0,
                       progress=None, jobs: int = 1, store=None,
                       reporter=None, on_error: str = "raise",
                       max_retries: int | None = None,
                       retry_backoff: float = 0.0,
                       manifest=None, should_stop=None,
                       **run_kwargs) -> SuiteResult:
    """Run every spec on ``machine`` and collect the results.

    ``progress`` is an optional callable ``(index, total, name)`` for
    long-running experiments.  ``jobs`` > 1 runs workloads in parallel
    worker processes (results are bit-identical to serial — the
    simulator is seeded-deterministic); ``store`` is an optional
    :class:`repro.exec.ResultStore` that serves previously computed runs
    and persists fresh ones, keyed by workload/machine/fidelity/kwargs
    *and* a fingerprint of the simulator source tree.

    ``on_error`` selects the failure policy: ``"raise"`` (default)
    re-raises the first failure, ``"skip"`` records failures on
    ``SuiteResult.failures`` and keeps going, ``"retry"`` additionally
    raises the transient retry budget (``max_retries`` defaults to 3
    there, 1 otherwise).  ``manifest`` (a
    :class:`~repro.exec.campaign.CampaignManifest`) journals outcomes;
    on resume, permanent prior failures are skipped without
    re-execution and transient ones are re-attempted.  ``should_stop``
    (zero-arg callable) stops the run early: completed work is
    journaled and :class:`~repro.exec.campaign.CampaignInterrupted`
    is raised.
    """
    from repro.exec.campaign import (PERMANENT, CampaignInterrupted,
                                     WorkloadFailure)
    from repro.exec.jobs import JobSpec, code_fingerprint
    from repro.exec.pool import JobFailure, run_jobs

    if on_error not in ("raise", "skip", "retry"):
        raise ValueError(f"unknown on_error policy {on_error!r}")
    if max_retries is None:
        max_retries = 3 if on_error == "retry" else 1

    fidelity = fidelity or Fidelity.default()
    jobspecs = [JobSpec(spec=spec, machine=machine, fidelity=fidelity,
                        seed=seed, run_kwargs=run_kwargs)
                for spec in specs]
    total = len(jobspecs)

    keys: list[str] | None = None
    carried: dict[int, WorkloadFailure] = {}
    if manifest is not None:
        fingerprint = code_fingerprint()
        manifest.begin(fingerprint, total=total)
        keys = [job.cache_key(fingerprint) for job in jobspecs]
        if on_error in ("skip", "retry"):
            prior = manifest.failure_records()
            for i, key in enumerate(keys):
                failure = prior.get(key)
                # Deterministic failures reproduce on retry: carry the
                # record instead of burning another attempt.  Transient
                # ones are re-attempted by simply not carrying them.
                if failure is not None \
                        and failure.classification == PERMANENT:
                    carried[i] = failure

    pending = [i for i in range(total) if i not in carried]
    catch = () if on_error == "raise" else (Exception,)
    from repro import obs
    with obs.span("suite.characterize", machine=machine.name,
                  workloads=total, jobs=jobs):
        sub_outcomes = run_jobs(
            [jobspecs[i] for i in pending], n_jobs=jobs, store=store,
            progress=progress, reporter=reporter, catch=catch,
            max_retries=max_retries, retry_backoff=retry_backoff,
            should_stop=should_stop)

    outcomes: list = [None] * total
    for i, outcome in zip(pending, sub_outcomes):
        outcomes[i] = outcome

    out = SuiteResult(machine=machine)
    unfinished = 0
    for i, (job, outcome) in enumerate(zip(jobspecs, outcomes)):
        key = keys[i] if keys is not None else None
        if i in carried:
            out.failures.append(carried[i])
            if manifest is not None:
                manifest.record(key, job.name, "skipped",
                                failure=carried[i])
            continue
        if outcome is None:             # interrupted before this job ran
            unfinished += 1
            continue
        if isinstance(outcome, JobFailure):
            failure = WorkloadFailure.from_job_failure(outcome, key=key)
            out.failures.append(failure)
            if manifest is not None:
                manifest.record(key, job.name, "failed", failure=failure)
        else:
            out.results.append(outcome)
            if manifest is not None:
                manifest.record(key, job.name, "done")

    if unfinished:
        if manifest is not None:
            manifest.record_event("interrupted", unfinished=unfinished)
        raise CampaignInterrupted(
            manifest.path if manifest is not None else None,
            completed=len(out.results), failed=len(out.failures),
            remaining=unfinished)

    if on_error == "raise" and out.failures:
        first = out.failures[0]
        if first.error is not None:
            raise first.error
        raise RuntimeError(
            f"{first.name} failed: {first.error_type}: {first.message}")
    return out


def suite_times(specs: list[WorkloadSpec], machine: MachineConfig,
                fidelity: Fidelity | None = None,
                seed: int = 0, jobs: int = 1,
                store=None) -> dict[str, float]:
    """Just the per-workload times (cheaper mental model for validation)."""
    return characterize_suite(specs, machine, fidelity, seed=seed,
                              jobs=jobs, store=store).times()
