"""Suite-level orchestration: characterize many workloads, build matrices."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import MetricMatrix, metric_vector
from repro.harness.runner import Fidelity, RunResult, run_workload
from repro.uarch.machine import MachineConfig
from repro.workloads.spec import WorkloadSpec


@dataclass
class SuiteResult:
    """All runs of one suite on one machine."""

    machine: MachineConfig
    results: list[RunResult] = field(default_factory=list)

    @property
    def names(self) -> list[str]:
        return [r.spec.name for r in self.results]

    def metric_matrix(self) -> MetricMatrix:
        return MetricMatrix(
            self.names,
            np.vstack([metric_vector(r.counters) for r in self.results]),
            [r.spec.suite for r in self.results])

    def times(self) -> dict[str, float]:
        """Per-workload simulated seconds (for §IV-C score validation).

        All runs execute the same instruction budget, so seconds is
        time-per-fixed-work: ratios between machines are SPECspeed-style
        speedups, and for throughput suites the inverse ratio is the
        throughput ratio — the same score either way.
        """
        return {r.spec.name: r.seconds for r in self.results}

    def result_of(self, name: str) -> RunResult:
        for r in self.results:
            if r.spec.name == name:
                return r
        raise KeyError(name)


def characterize_suite(specs: list[WorkloadSpec], machine: MachineConfig,
                       fidelity: Fidelity | None = None, seed: int = 0,
                       progress=None, **run_kwargs) -> SuiteResult:
    """Run every spec on ``machine`` and collect the results.

    ``progress`` is an optional callable ``(index, total, name)`` for
    long-running experiments.
    """
    fidelity = fidelity or Fidelity.default()
    out = SuiteResult(machine=machine)
    total = len(specs)
    for i, spec in enumerate(specs):
        if progress is not None:
            progress(i, total, spec.name)
        out.results.append(
            run_workload(spec, machine, fidelity, seed=seed, **run_kwargs))
    return out


def suite_times(specs: list[WorkloadSpec], machine: MachineConfig,
                fidelity: Fidelity | None = None,
                seed: int = 0) -> dict[str, float]:
    """Just the per-workload times (cheaper mental model for validation)."""
    return characterize_suite(specs, machine, fidelity, seed=seed).times()
