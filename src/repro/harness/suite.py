"""Suite-level orchestration: characterize many workloads, build matrices."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import MetricMatrix, metric_vector
from repro.harness.runner import Fidelity, RunResult
from repro.uarch.machine import MachineConfig
from repro.workloads.spec import WorkloadSpec


@dataclass
class SuiteResult:
    """All runs of one suite on one machine."""

    machine: MachineConfig
    results: list[RunResult] = field(default_factory=list)
    #: lazily built name -> RunResult index (first occurrence wins, like
    #: the linear scan it replaces); rebuilt when ``results`` grows
    _index: dict[str, RunResult] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def names(self) -> list[str]:
        return [r.spec.name for r in self.results]

    def metric_matrix(self) -> MetricMatrix:
        return MetricMatrix(
            self.names,
            np.vstack([metric_vector(r.counters) for r in self.results]),
            [r.spec.suite for r in self.results])

    def times(self) -> dict[str, float]:
        """Per-workload simulated seconds (for §IV-C score validation).

        All runs execute the same instruction budget, so seconds is
        time-per-fixed-work: ratios between machines are SPECspeed-style
        speedups, and for throughput suites the inverse ratio is the
        throughput ratio — the same score either way.
        """
        return {r.spec.name: r.seconds for r in self.results}

    def result_of(self, name: str) -> RunResult:
        # Subset validation calls this in a loop over the full corpus;
        # an O(n) scan per lookup made that quadratic.
        if self._index is None or len(self._index) < len(self.results):
            index: dict[str, RunResult] = {}
            for r in self.results:
                index.setdefault(r.spec.name, r)
            self._index = index
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(name) from None


def characterize_suite(specs: list[WorkloadSpec], machine: MachineConfig,
                       fidelity: Fidelity | None = None, seed: int = 0,
                       progress=None, jobs: int = 1, store=None,
                       reporter=None, **run_kwargs) -> SuiteResult:
    """Run every spec on ``machine`` and collect the results.

    ``progress`` is an optional callable ``(index, total, name)`` for
    long-running experiments.  ``jobs`` > 1 runs workloads in parallel
    worker processes (results are bit-identical to serial — the
    simulator is seeded-deterministic); ``store`` is an optional
    :class:`repro.exec.ResultStore` that serves previously computed runs
    and persists fresh ones, keyed by workload/machine/fidelity/kwargs
    *and* a fingerprint of the simulator source tree.
    """
    from repro.exec.jobs import JobSpec
    from repro.exec.pool import JobFailure, run_jobs

    fidelity = fidelity or Fidelity.default()
    jobspecs = [JobSpec(spec=spec, machine=machine, fidelity=fidelity,
                        seed=seed, run_kwargs=run_kwargs)
                for spec in specs]
    outcomes = run_jobs(jobspecs, n_jobs=jobs, store=store,
                        progress=progress, reporter=reporter)
    out = SuiteResult(machine=machine)
    for outcome in outcomes:
        if isinstance(outcome, JobFailure):
            raise outcome.error
        out.results.append(outcome)
    return out


def suite_times(specs: list[WorkloadSpec], machine: MachineConfig,
                fidelity: Fidelity | None = None,
                seed: int = 0, jobs: int = 1,
                store=None) -> dict[str, float]:
    """Just the per-workload times (cheaper mental model for validation)."""
    return characterize_suite(specs, machine, fidelity, seed=seed,
                              jobs=jobs, store=store).times()
