"""Plain-text rendering of the paper's tables and figures.

Every bench target prints through these helpers so outputs are uniform:
aligned tables, horizontal bar charts (the paper's bar figures), and
scatter summaries (its PCA scatter figures).
"""

from __future__ import annotations

import numpy as np


def format_table(headers: list[str], rows: list[list],
                 float_fmt: str = "{:.3f}") -> str:
    """Monospace table with auto-sized columns."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def bar_chart(labels: list[str], values: list[float], title: str = "",
              width: int = 40, unit: str = "") -> str:
    """Horizontal ASCII bar chart (one bar per label)."""
    vmax = max((abs(v) for v in values), default=1.0) or 1.0
    label_w = max((len(l) for l in labels), default=1)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(abs(value) / vmax * width))
        sign = "-" if value < 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{sign}{abs(value):.3g}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(labels: list[str],
                      series: dict[str, list[float]],
                      title: str = "", width: int = 50) -> str:
    """Stacked 100% bars (the paper's Top-Down figures).

    ``series`` maps segment name -> per-label fractions (should sum to
    ~1 per label); each segment is drawn with its own glyph.
    """
    glyphs = "#=+:.%@*o-"
    seg_names = list(series)
    label_w = max((len(l) for l in labels), default=1)
    lines = [title] if title else []
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(seg_names))
    lines.append(f"legend: {legend}")
    for row, label in enumerate(labels):
        bar = ""
        for i, name in enumerate(seg_names):
            frac = max(0.0, series[name][row])
            bar += glyphs[i % len(glyphs)] * int(round(frac * width))
        lines.append(f"{label.ljust(label_w)} |{bar[:width].ljust(width)}|")
    return "\n".join(lines)


def scatter_summary(groups: dict[str, np.ndarray], axis_names=("PC1", "PC2"),
                    title: str = "") -> str:
    """Numeric summary of a 2-D PCA scatter: per-group centroid + std.

    The paper's Figs 5-7 draw scatter plots; the quantitative claims it
    makes about them are the per-suite standard deviations, which is what
    this renders (plus centroids so separation is visible in text).
    """
    rows = []
    for name, pts in groups.items():
        pts = np.asarray(pts)
        rows.append([name, len(pts),
                     float(pts[:, 0].mean()), float(pts[:, 1].mean()),
                     float(pts[:, 0].std()), float(pts[:, 1].std())])
    table = format_table(
        ["group", "n", f"{axis_names[0]} mean", f"{axis_names[1]} mean",
         f"{axis_names[0]} std", f"{axis_names[1]} std"], rows)
    return f"{title}\n{table}" if title else table


def std_ratio(a: np.ndarray, b: np.ndarray) -> float:
    """Ratio of per-axis pooled standard deviations (paper's 'x.xx times')."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    sa = float(np.sqrt(np.mean(a.std(axis=0) ** 2)))
    sb = float(np.sqrt(np.mean(b.std(axis=0) ** 2)))
    return sa / sb if sb else float("inf")


def geomean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    if (arr <= 0).any():
        arr = np.clip(arr, 1e-12, None)
    return float(np.exp(np.log(arr).mean()))
