"""Experiment harness: run workloads on machines, collect results."""

from repro.harness.runner import (Fidelity, RunResult, run_workload,
                                  run_multicore, run_with_sampling)
from repro.harness.suite import SuiteResult, characterize_suite, suite_times

__all__ = ["Fidelity", "RunResult", "run_workload", "run_multicore",
           "run_with_sampling", "SuiteResult", "characterize_suite",
           "suite_times"]
