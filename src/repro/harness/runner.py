"""Run one workload on one machine and collect everything (§III-A policy).

The measurement protocol mirrors the paper:

* .NET microbenchmarks are short — the paper runs them 15 times and
  discards the first run to amortize warmup.  Here warmup = consuming
  ``Fidelity.warmup_instructions`` (JIT of the hot paths, cache/TLB/
  predictor training) and then zeroing the books
  (:meth:`Core.reset_stats`), which keeps microarchitectural state warm
  exactly like a discarded first run does.
* ASP.NET runs to steady state; a longer warmup serves the same role.

Simulated time = cycles / max frequency (the machines run turbo under
load), which feeds the §IV-C score validation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import obs
from repro.kernel.vm import VirtualMemory
from repro.perf.counters import CounterSnapshot, collect_counters
from repro.perf.sampler import CounterSampler, SampleSeries
from repro.perf.trace_io import TraceFormatError
from repro.perf.tracer import LttngTracer
from repro.runtime.gc import GcConfig
from repro.runtime.heap import HeapConfig
from repro.trace import TraceBufferStream
from repro.uarch.machine import MachineConfig
from repro.uarch.multicore import MulticoreRunner, MulticoreResult
from repro.uarch.pipeline import Core
from repro.uarch.topdown import TopDownProfile, profile_core
from repro.workloads.program import build_program
from repro.workloads.spec import SuiteName, WorkloadSpec


ENGINES = ("legacy", "batched", "vector")


def resolve_engine(engine: str | None) -> str:
    """Resolve the consume-engine choice to one of :data:`ENGINES`.

    Priority: explicit ``engine`` argument > ``REPRO_ENGINE`` env var >
    ``REPRO_LEGACY_CONSUME=1`` (the historical toggle) > ``"batched"``.
    ``"vector"`` selects the native columnar kernel
    (:mod:`repro.uarch.native`); it transparently falls back to the
    batched path when the kernel is unavailable or the core uses a
    configuration the kernel does not model, so resolution never fails
    at this layer.  All engines are bit-identical (enforced by
    tests/integration/test_batched_equivalence.py).
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or None
    if engine is None and os.environ.get("REPRO_LEGACY_CONSUME",
                                         "0") not in ("", "0"):
        engine = "legacy"
    engine = engine or "batched"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    return engine


@dataclass(frozen=True)
class Fidelity:
    """Scale knob between test speed and paper-scale accuracy."""

    warmup_instructions: int = 60_000
    measure_instructions: int = 150_000
    #: extra warmup factor for ASP.NET (steady state takes longer, §III-A)
    aspnet_warmup_factor: float = 1.5
    #: workloads per category in full-corpus experiments (None = all)
    workloads_per_category: int | None = 8

    @classmethod
    def test(cls) -> "Fidelity":
        return cls(warmup_instructions=12_000, measure_instructions=25_000,
                   workloads_per_category=2)

    @classmethod
    def default(cls) -> "Fidelity":
        return cls()

    @classmethod
    def paper(cls) -> "Fidelity":
        return cls(warmup_instructions=150_000,
                   measure_instructions=400_000,
                   workloads_per_category=None)


@dataclass(frozen=True)
class RunResult:
    """Everything one measured run produces."""

    spec: WorkloadSpec
    machine: MachineConfig
    counters: CounterSnapshot
    topdown: TopDownProfile
    seconds: float
    samples: SampleSeries | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def ipc(self) -> float:
        return self.counters.ipc


def _heap_and_gc(spec: WorkloadSpec,
                 heap_config: HeapConfig | None,
                 gc_config: GcConfig | None) -> tuple[HeapConfig, GcConfig]:
    gc_config = gc_config or GcConfig()
    if heap_config is None:
        heap_config = HeapConfig(
            max_heap_bytes=gc_config.max_heap_bytes,
            gen0_budget_bytes=gc_config.gen0_budget())
    return heap_config, gc_config


def run_workload(spec: WorkloadSpec, machine: MachineConfig,
                 fidelity: Fidelity | None = None, *,
                 gc_config: GcConfig | None = None,
                 heap_config: HeapConfig | None = None,
                 sampling: bool = False,
                 sample_interval: float = 1e-3,
                 reuse_code_pages: bool = False,
                 compaction_enabled: bool = True,
                 seed: int = 0,
                 trace_store=None,
                 engine: str | None = None) -> RunResult:
    """Warm up, measure, and package one workload run.

    ``trace_store`` (a :class:`repro.exec.traces.TraceStore`) makes the
    run record-once/replay-many: on a warm store the op stream is
    replayed from disk and the workload program is never built.  A
    stored trace that fails to decode (corruption that slipped past the
    store's checksum — e.g. a legacy entry without one) is quarantined
    and the run falls back to regenerating the trace instead of
    propagating the decode error.  ``engine`` selects the consume path
    (see :func:`resolve_engine`; default batched, ``"vector"`` for the
    native columnar kernel, legacy when ``REPRO_LEGACY_CONSUME=1``).
    """
    fidelity = fidelity or Fidelity.default()
    heap_config, gc_config = _heap_and_gc(spec, heap_config, gc_config)
    warmup = fidelity.warmup_instructions
    if spec.suite == SuiteName.ASPNET:
        warmup = int(warmup * fidelity.aspnet_warmup_factor)
    measure = int(fidelity.measure_instructions
                  * machine.dynamic_instr_bloat)

    def make_program():
        return build_program(
            spec, seed=seed, heap_config=heap_config, gc_config=gc_config,
            code_bloat=machine.code_bloat,
            reuse_code_pages=reuse_code_pages,
            compaction_enabled=compaction_enabled)

    engine = resolve_engine(engine)
    legacy = engine == "legacy"
    trace_key = None
    if trace_store is not None and not legacy:
        trace_key = trace_store.key_for(
            spec, seed=seed, code_bloat=machine.code_bloat,
            gc_config=gc_config, heap_config=heap_config,
            reuse_code_pages=reuse_code_pages,
            compaction_enabled=compaction_enabled)

    # Warm-worker reuse (repro.exec.warm): rehydrate a pristine
    # (vm, core) snapshot for this machine config instead of
    # reconstructing, and reuse decoded trace chunks across jobs that
    # replay the same store entry.  Both are bit-identity-preserving;
    # the pool evicts the cache on any job failure.  Imported lazily —
    # repro.exec.jobs imports this module at its top level.
    from repro.exec import warm as _warm
    warm_cache = _warm.get_cache()

    def attempt() -> RunResult:
        pair = warm_cache.model(machine) if warm_cache is not None else None
        if pair is None:
            vm = VirtualMemory()
            core = Core(machine, vm)
            if warm_cache is not None:
                warm_cache.put_model(machine, vm, core)
        else:
            vm, core = pair
        core.set_hints(spec.hints())
        tracer = LttngTracer(machine.max_freq_hz)
        core.event_hook = tracer.hook
        if legacy:
            with obs.span("run.build_program", workload=spec.name):
                program = make_program()
            program.premap(vm)
            source = program.ops()
            consume = core.consume
        else:
            def consume(source, max_instructions=None, _core=core):
                return _core.consume_stream(source, max_instructions,
                                            engine=engine)
            if trace_key is not None:
                with obs.span("run.trace_ensure", workload=spec.name):
                    meta, _ = trace_store.ensure(
                        trace_key, warmup + measure, make_program)
                for start, length in meta["premap_ranges"]:
                    vm.premap_range(start, length)
                identity = (_warm.file_identity(
                    trace_store.trace_path(trace_key))
                    if warm_cache is not None else None)
                bufs = (warm_cache.buffers(trace_key, identity)
                        if warm_cache is not None else None)
                if (bufs is None and warm_cache is not None
                        and meta.get("n_instructions", 0)
                        <= warm_cache.max_buffer_ops):
                    bufs = list(trace_store.replay(trace_key))
                    warm_cache.put_buffers(trace_key, bufs, identity)
                if bufs is not None:
                    source = TraceBufferStream(buffers=iter(bufs))
                else:
                    source = TraceBufferStream(
                        buffers=trace_store.replay(trace_key))
            else:
                with obs.span("run.build_program", workload=spec.name):
                    program = make_program()
                program.premap(vm)
                source = TraceBufferStream(filler=program.fill_buffer)
        with obs.span("run.warmup", workload=spec.name,
                      instructions=warmup):
            consume(source, max_instructions=warmup)
        core.reset_stats()
        tracer.clear()
        sampler = None
        if sampling:
            sampler = CounterSampler(core, tracer.counts,
                                     interval_seconds=sample_interval)
        with obs.span("run.measure", workload=spec.name,
                      instructions=measure):
            consume(source, max_instructions=measure)
        samples = sampler.finish() if sampler is not None else None
        counters = collect_counters(core, tracer.counts,
                                    cpu_utilization=spec.cpu_utilization)
        if obs.enabled():
            # GC/JIT/exception replay volume (Table I events 19-23).
            for kind, n in tracer.counts.as_dict().items():
                if n:
                    obs.add(f"runner.events.{kind}", float(n))
            obs.observe("runner.simulated_seconds", counters.seconds)
        return RunResult(
            spec=spec, machine=machine, counters=counters,
            topdown=profile_core(core),
            seconds=counters.seconds, samples=samples)

    if trace_key is None:
        return attempt()
    try:
        return attempt()
    except TraceFormatError:
        trace_store.quarantine(trace_key)
        return attempt()


def run_with_sampling(spec: WorkloadSpec, machine: MachineConfig,
                      fidelity: Fidelity | None = None,
                      **kwargs) -> RunResult:
    """Convenience wrapper for the §VII-A correlation studies."""
    return run_workload(spec, machine, fidelity, sampling=True, **kwargs)


#: Address ranges that are private per thread/worker in a threaded server
#: (nursery + stacks + request buffers + per-connection kernel buffers);
#: code and long-lived shared state keep common addresses across cores.
from repro.trace import (OP_LOAD as _OPL, OP_STORE as _OPS,
                         REGION_HEAP_BASE as _HEAP,
                         REGION_STACK_BASE as _STACK)

#: Heap (worker allocation contexts) and stacks are thread-private;
#: code, long-lived shared state and kernel slab buffers are shared.
_PRIVATE_SPANS = ((_HEAP, _HEAP + (1 << 34)),
                  (_STACK, _STACK + (1 << 28)))


def _color_ops(ops, core_id: int):
    """Offset per-thread-private data addresses by a per-core color.

    Threads of one server process share code (same PCs) and the long-
    lived heap structure, but each worker has its own allocation context,
    stack and connection buffers.  Coloring those ranges keeps the shared
    LLC seeing distinct lines per core, as real servers do.
    """
    if core_id == 0:
        yield from ops
        return
    color = core_id << 40
    spans = _PRIVATE_SPANS
    for op in ops:
        kind = op[0]
        if kind == _OPL or kind == _OPS:
            addr = op[1]
            for lo, hi in spans:
                if lo <= addr < hi:
                    op = (kind, addr + color)
                    break
        yield op


def run_multicore(spec: WorkloadSpec, machine: MachineConfig,
                  n_cores: int, fidelity: Fidelity | None = None,
                  seed: int = 0, engine: str | None = None,
                  trace_store=None, sampling: bool = False,
                  sample_interval: float = 1e-3
                  ) -> tuple[MulticoreResult, TopDownProfile,
                             CounterSnapshot]:
    """Run one ASP.NET-style workload replicated across ``n_cores``.

    Cores model worker threads of one server process: identical code
    (same seed -> same method layout, so code lines are shared in the
    LLC) with per-core private data (see :func:`_color_ops`).  Warm up
    all cores, reset, then measure — returns the multicore result plus
    the Top-Down profile and counters of core 0 (cores are symmetric).

    On the batched engine, per-core address coloring is one vectorized
    mask per chunk (:meth:`repro.trace.TraceBuffer.color_private`)
    instead of one tuple rebuild per memory op.  ``engine="vector"``
    runs the whole interleaved round loop on the native kernel: per-core
    images stay resident across quanta, the shared LLC (slice-hashed
    epoch counters, contention-folded latency) is modeled in C, and
    Python's M/M/1 ``update_contention`` runs unchanged at every epoch
    boundary — bit-identical to batched at any core count.

    ``trace_store`` makes the per-core op streams record-once/
    replay-many (keys are suffixed per core, since each core's program
    diverges by RNG jump); ``sampling`` attaches a
    :class:`~repro.perf.sampler.CounterSampler` to core 0 for the
    measure phase — on the vector engine its cycle hook runs through
    the kernel's trampoline.
    """
    fidelity = fidelity or Fidelity.default()
    heap_config, gc_config = _heap_and_gc(spec, None, None)
    programs = {}
    engine = resolve_engine(engine)
    legacy = engine == "legacy"
    warmup = int(fidelity.warmup_instructions
                 * fidelity.aspnet_warmup_factor)
    measure = fidelity.measure_instructions

    def make_program(core_id: int):
        program = build_program(
            spec, seed=seed, heap_config=heap_config,
            gc_config=gc_config, code_bloat=machine.code_bloat)
        # Per-core divergence of the *pattern* without changing the code
        # layout: jump the program's RNG ahead by a core-specific amount.
        program.rng.seed((seed << 8) ^ core_id)
        return program

    def color_transform(core_id: int):
        if not core_id:
            return None
        color = core_id << 40
        return (lambda buf, _c=color:
                buf.color_private(_PRIVATE_SPANS, _c))

    premap_ranges = {}

    def factory(core_id: int):
        if legacy:
            program = make_program(core_id)
            programs[core_id] = program
            return _color_ops(program.ops(), core_id), spec.hints()
        if trace_store is not None:
            from repro.exec.traces import trace_fingerprint
            key = trace_store.key_for(
                spec, seed=seed, code_bloat=machine.code_bloat,
                gc_config=gc_config, heap_config=heap_config,
                fingerprint=trace_fingerprint() + f"/mc{core_id}")
            meta, _ = trace_store.ensure(
                key, warmup + measure, lambda: make_program(core_id))
            premap_ranges[core_id] = meta["premap_ranges"]
            return (TraceBufferStream(
                buffers=trace_store.replay(key),
                transform=color_transform(core_id)), spec.hints())
        program = make_program(core_id)
        programs[core_id] = program
        return (TraceBufferStream(filler=program.fill_buffer,
                                  transform=color_transform(core_id)),
                spec.hints())

    runner = MulticoreRunner(machine, n_cores, factory, engine=engine)
    for core_id, core in enumerate(runner.cores):
        if core_id in programs:
            programs[core_id].premap(core.vm)
        else:
            for start, length in premap_ranges[core_id]:
                core.vm.premap_range(start, length)
    runner.run(warmup)
    for core in runner.cores:
        core.reset_stats()
    runner.llc.cache.reset_stats()
    core0 = runner.cores[0]
    sampler = None
    if sampling:
        sampler = CounterSampler(core0, None,
                                 interval_seconds=sample_interval)
    result = runner.run(measure)
    samples = sampler.finish() if sampler is not None else None
    counters = collect_counters(core0, None,
                                cpu_utilization=min(
                                    1.0, n_cores / machine.logical_cores))
    result.samples = samples
    return result, profile_core(core0), counters
