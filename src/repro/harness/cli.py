"""Command-line entry point: characterize a benchmark from the shell.

Examples::

    repro-characterize System.Runtime
    repro-characterize Plaintext --machine arm --instructions 200000
    repro-characterize --list
"""

from __future__ import annotations

import argparse
import sys

from repro.core.metrics import METRICS, metric_vector
from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_workload
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs


def _all_specs():
    return dotnet_category_specs() + aspnet_specs() + speccpu_specs()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description="Characterize a benchmark on a simulated machine "
                    "(ISPASS'21 .NET characterization reproduction).")
    parser.add_argument("benchmark", nargs="?",
                        help="benchmark name (see --list)")
    parser.add_argument("--machine", default="i9",
                        choices=["xeon", "i9", "arm"])
    parser.add_argument("--instructions", type=int, default=150_000,
                        help="measured instruction budget")
    parser.add_argument("--warmup", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--topdown", action="store_true",
                        help="print the full Top-Down breakdown")
    parser.add_argument("--toplev", action="store_true",
                        help="print the toplev-style hierarchy tree")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also record the measured op stream to PATH")
    parser.add_argument("--list", action="store_true",
                        help="list all known benchmarks and exit")
    args = parser.parse_args(argv)

    specs = _all_specs()
    if args.list:
        for s in specs:
            print(f"{s.suite:8s} {s.name}")
        return 0
    if not args.benchmark:
        parser.error("benchmark name required (or --list)")
    by_name = {s.name: s for s in specs}
    if args.benchmark not in by_name:
        print(f"error: unknown benchmark {args.benchmark!r} "
              f"(try --list)", file=sys.stderr)
        return 2
    fidelity = Fidelity(warmup_instructions=args.warmup,
                        measure_instructions=args.instructions)
    result = run_workload(by_name[args.benchmark],
                          get_machine(args.machine), fidelity,
                          seed=args.seed)
    vec = metric_vector(result.counters)
    rows = [[m.id, m.name, f"{vec[m.id]:.4g}", m.unit] for m in METRICS]
    print(f"# {args.benchmark} on {result.machine.name}")
    print(format_table(["id", "metric", "value", "unit"], rows))
    td = result.topdown
    print(f"\nTop-Down L1: retiring={td.retiring:.1%} "
          f"bad_spec={td.bad_speculation:.1%} "
          f"frontend={td.frontend_bound:.1%} "
          f"backend={td.backend_bound:.1%}")
    if args.topdown:
        print("\nFrontend breakdown (share of FE-bound slots):")
        for k, v in td.frontend_breakdown().items():
            print(f"  {k:22s} {v:6.1%}")
        print("Backend breakdown (share of BE-bound slots):")
        for k, v in td.backend_breakdown().items():
            print(f"  {k:22s} {v:6.1%}")
    if args.toplev:
        from repro.perf.toplev import render
        print("\n" + render(td))
    if args.trace_out:
        from repro.perf.trace_io import record
        from repro.workloads.program import build_program
        program = build_program(by_name[args.benchmark], seed=args.seed)
        n = record(program.ops(), args.trace_out,
                   max_instructions=args.instructions)
        print(f"\nrecorded {n} instructions to {args.trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
