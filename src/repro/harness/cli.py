"""Command-line entry point: characterize benchmarks from the shell.

Examples::

    repro-characterize System.Runtime
    repro-characterize Plaintext --machine arm --instructions 200000
    repro-characterize Json Plaintext mcf --jobs 4 --cache-dir ~/.repro
    repro-characterize --suite dotnet --jobs 8 --cache-dir ~/.repro
    repro-characterize --list

With ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) results are served from
and persisted to a content-addressed store: a repeated invocation with
an unchanged source tree simulates nothing, and any edit under
``src/repro/`` automatically invalidates the affected entries.
``--no-cache`` bypasses the store for one invocation.

Long campaigns add the resilience surface: ``--on-error skip|retry``
degrades failed workloads into a per-workload summary (exit status 1)
instead of aborting, ``--max-retries`` sizes the transient retry
budget, ``--manifest PATH`` journals every outcome to an append-only
JSONL file, and ``--resume PATH`` continues an interrupted campaign —
completed work is served from the store, transient failures are
re-attempted, deterministic ones are skipped.  The first Ctrl-C stops
gracefully (journal written, exit 130); the second kills the run.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.metrics import METRICS, metric_vector
from repro.harness.report import format_table
from repro.harness.runner import Fidelity
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs


def _all_specs():
    return dotnet_category_specs() + aspnet_specs() + speccpu_specs()


def _make_store(args):
    if args.no_cache or not args.cache_dir:
        return None
    from repro.exec.store import ResultStore
    return ResultStore(os.path.expanduser(args.cache_dir))


def _print_single(result, args) -> None:
    vec = metric_vector(result.counters)
    rows = [[m.id, m.name, f"{vec[m.id]:.4g}", m.unit] for m in METRICS]
    print(f"# {result.spec.name} on {result.machine.name}")
    print(format_table(["id", "metric", "value", "unit"], rows))
    td = result.topdown
    print(f"\nTop-Down L1: retiring={td.retiring:.1%} "
          f"bad_spec={td.bad_speculation:.1%} "
          f"frontend={td.frontend_bound:.1%} "
          f"backend={td.backend_bound:.1%}")
    if args.topdown:
        print("\nFrontend breakdown (share of FE-bound slots):")
        for k, v in td.frontend_breakdown().items():
            print(f"  {k:22s} {v:6.1%}")
        print("Backend breakdown (share of BE-bound slots):")
        for k, v in td.backend_breakdown().items():
            print(f"  {k:22s} {v:6.1%}")
    if args.toplev:
        from repro.perf.toplev import render
        print("\n" + render(td))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description="Characterize benchmarks on a simulated machine "
                    "(ISPASS'21 .NET characterization reproduction).")
    parser.add_argument("benchmark", nargs="*",
                        help="benchmark name(s) (see --list); several "
                             "names are run as one suite")
    parser.add_argument("--suite", choices=["dotnet", "aspnet", "speccpu"],
                        help="characterize every benchmark of one suite")
    parser.add_argument("--machine", default="i9",
                        choices=["xeon", "i9", "arm"])
    parser.add_argument("--engine",
                        choices=["legacy", "batched", "vector"],
                        default=os.environ.get("REPRO_ENGINE") or None,
                        help="consume engine: tuple-at-a-time (legacy), "
                             "SoA chunks (batched, default), or the "
                             "native columnar kernel (vector); all are "
                             "bit-identical (default: $REPRO_ENGINE)")
    parser.add_argument("--instructions", type=int, default=150_000,
                        help="measured instruction budget")
    parser.add_argument("--warmup", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes for multi-"
                             "benchmark runs (results are bit-identical "
                             "to --jobs 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="content-addressed result store (default: "
                             "$REPRO_CACHE_DIR; unset = no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the result store for this run")
    parser.add_argument("--on-error", choices=["raise", "skip", "retry"],
                        default="raise",
                        help="failure policy: abort on the first failed "
                             "workload (raise, default), record it and "
                             "keep going (skip), or retry transient "
                             "failures with backoff first (retry)")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="transient-failure retry budget per "
                             "workload (default: 3 with --on-error "
                             "retry, else 1)")
    parser.add_argument("--manifest", metavar="PATH",
                        help="journal every job outcome to an append-"
                             "only JSONL campaign manifest")
    parser.add_argument("--resume", metavar="PATH",
                        help="resume the campaign journaled at PATH: "
                             "skip completed work (via the result "
                             "store), re-attempt transient failures, "
                             "carry deterministic ones")
    parser.add_argument("--trace-dir", metavar="DIR",
                        default=os.environ.get("REPRO_TRACE_DIR"),
                        help="content-addressed trace store: record each "
                             "workload's op stream once, replay it on "
                             "later runs (default: $REPRO_TRACE_DIR)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one run of the first benchmark and "
                             "print the top-25 functions by tottime")
    parser.add_argument("--topdown", action="store_true",
                        help="print the full Top-Down breakdown")
    parser.add_argument("--toplev", action="store_true",
                        help="print the toplev-style hierarchy tree")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also record the measured op stream to PATH")
    parser.add_argument("--obs-dir", metavar="DIR",
                        default=os.environ.get("REPRO_OBS_DIR"),
                        help="enable observability: span JSONL, metrics "
                             "dumps and profiles land here (summarize "
                             "with 'repro-obs report DIR'; default: "
                             "$REPRO_OBS_DIR)")
    parser.add_argument("--bench-history", metavar="PATH",
                        help="append per-workload baseline records "
                             "(simulated seconds, CPI) to a JSONL "
                             "history; check it with 'repro-obs "
                             "regress PATH'")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="also dump merged metrics to PATH "
                             "(.prom = Prometheus textfile, else JSON); "
                             "implies metrics collection")
    parser.add_argument("--trace-spans", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="with --obs-dir, emit span JSONL "
                             "(--no-trace-spans keeps metrics only)")
    parser.add_argument("--obs-profile", choices=["cprofile", "tracemalloc"],
                        help="profile every job (needs --obs-dir for "
                             "the .pstats/heap artifacts)")
    parser.add_argument("--list", action="store_true",
                        help="list all known benchmarks and exit")
    args = parser.parse_args(argv)

    specs = _all_specs()
    if args.list:
        for s in specs:
            print(f"{s.suite:8s} {s.name}")
        return 0
    if args.suite:
        selected = [s for s in specs if s.suite == args.suite]
    else:
        if not args.benchmark:
            parser.error("benchmark name required (or --suite / --list)")
        by_name = {s.name: s for s in specs}
        missing = [n for n in args.benchmark if n not in by_name]
        if missing:
            print(f"error: unknown benchmark {missing[0]!r} "
                  f"(try --list)", file=sys.stderr)
            return 2
        selected = [by_name[n] for n in args.benchmark]

    fidelity = Fidelity(warmup_instructions=args.warmup,
                        measure_instructions=args.instructions)
    store = _make_store(args)
    machine = get_machine(args.machine)
    if args.trace_dir:
        # execute_job picks the store up from the environment, which also
        # covers --jobs worker processes.
        os.environ["REPRO_TRACE_DIR"] = os.path.expanduser(args.trace_dir)
    if args.engine:
        # Same pattern: run_workload resolves REPRO_ENGINE, so the choice
        # propagates through execute_job and --jobs worker processes.
        os.environ["REPRO_ENGINE"] = args.engine

    obs_on = bool(args.obs_dir or args.metrics_out or args.obs_profile)
    if obs_on:
        from repro import obs
        obs.configure(
            os.path.expanduser(args.obs_dir) if args.obs_dir else None,
            spans=args.trace_spans, profile=args.obs_profile)

    def finish_obs() -> None:
        if not obs_on:
            return
        from repro import obs
        if args.metrics_out:
            obs.write_metrics(os.path.expanduser(args.metrics_out))
        obs.shutdown()
        if args.obs_dir:
            print(f"[obs: spans + metrics in {args.obs_dir}; summarize "
                  f"with 'repro-obs report {args.obs_dir}']",
                  file=sys.stderr)

    if args.profile:
        import cProfile
        import pstats
        from repro.harness.runner import run_workload
        trace_store = None
        if args.trace_dir:
            from repro.exec.traces import TraceStore
            trace_store = TraceStore(os.path.expanduser(args.trace_dir))
        profiler = cProfile.Profile()
        profiler.enable()
        result = run_workload(selected[0], machine, fidelity,
                              seed=args.seed, trace_store=trace_store)
        profiler.disable()
        print(f"# cProfile of one {selected[0].name} run on "
              f"{machine.name} ({result.counters.instructions} instr)")
        pstats.Stats(profiler).sort_stats("tottime").print_stats(25)
        return 0

    from repro.exec.campaign import (CampaignInterrupted, CampaignManifest,
                                     graceful_shutdown)
    from repro.exec.progress import ProgressReporter
    from repro.harness.suite import characterize_suite

    manifest = None
    manifest_path = args.resume or args.manifest
    on_error = args.on_error
    if manifest_path:
        manifest = CampaignManifest(os.path.expanduser(manifest_path))
        if args.resume and store is None:
            print("note: --resume without --cache-dir re-runs completed "
                  "work (results were not persisted)", file=sys.stderr)
        if args.resume and on_error == "raise":
            # A resumed campaign is by definition one that hit trouble;
            # aborting on the first failure would defeat the resume.
            on_error = "skip"

    try:
        reporter = ProgressReporter(len(selected))
        with graceful_shutdown() as stop:
            try:
                suite = characterize_suite(
                    selected, machine, fidelity, seed=args.seed,
                    jobs=args.jobs, store=store, reporter=reporter,
                    on_error=on_error, max_retries=args.max_retries,
                    manifest=manifest, should_stop=stop.is_set)
            except CampaignInterrupted as exc:
                print(f"\ninterrupted: {exc}", file=sys.stderr)
                return 130

        if len(selected) == 1 and suite.results:
            _print_single(suite.results[0], args)
        else:
            rows = [[r.spec.suite, r.spec.name, f"{r.counters.cpi:.3f}",
                     f"{r.counters.ipc:.3f}", f"{r.seconds * 1e3:.3f}"]
                    for r in suite.results]
            print(f"# {len(rows)} benchmarks on {machine.name}")
            print(format_table(["suite", "benchmark", "cpi", "ipc", "ms"],
                               rows))
            print(f"\n[{reporter.status_line()}]")
        if store is not None:
            stats = store.stats()
            print(f"[store: {stats.entries} entries, "
                  f"{stats.total_bytes / 1e6:.1f} MB at {stats.root}]")

        if args.bench_history and suite.results:
            from repro.harness.runner import resolve_engine
            from repro.obs.baseline import BaselineStore, records_for_suite
            engine = resolve_engine(args.engine)
            records = records_for_suite(
                suite.results, machine=machine, fidelity=fidelity,
                engine=engine, seed=args.seed)
            BaselineStore(
                os.path.expanduser(args.bench_history)).append(records)
            print(f"[bench-history: {len(records)} record(s) appended to "
                  f"{args.bench_history}]", file=sys.stderr)

        if args.trace_out:
            from repro.perf.trace_io import record
            from repro.workloads.program import build_program
            program = build_program(selected[0], seed=args.seed)
            n = record(program.ops(), args.trace_out,
                       max_instructions=args.instructions)
            print(f"\nrecorded {n} instructions to {args.trace_out}")

        if suite.failures:
            rows = [[f.name, f.error_type, f.classification,
                     str(f.attempts), f.worker_fate]
                    for f in suite.failures]
            print(f"\n# {len(suite.failures)} workload(s) failed",
                  file=sys.stderr)
            print(format_table(["benchmark", "error", "class", "attempts",
                                "worker"], rows), file=sys.stderr)
            if manifest is not None:
                print(f"[failures journaled to {manifest.path}; re-run with "
                      f"--resume {manifest.path} to retry transient ones]",
                      file=sys.stderr)
            return 1
        return 0
    finally:
        finish_obs()


if __name__ == "__main__":
    raise SystemExit(main())
