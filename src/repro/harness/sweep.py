"""Parameter sweeps: run one workload across machine/config variations.

The paper's evaluation is full of sweeps — GC flavor x heap size
(Fig 14), core counts (Figs 11-12), machines (Fig 2/7).  This module
provides the generic machinery: declare axes, get a result grid, render
it.  Downstream users can sweep *hardware* parameters the paper only
speculates about (e.g. "Data placement strategies in LLC slices",
"aggressive prefetching" — §VIII) without touching harness internals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace as dc_replace, field

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, RunResult
from repro.uarch.machine import MachineConfig
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Axis:
    """One sweep dimension.

    ``target`` selects what the values apply to:

    * ``"machine"`` — a MachineConfig field to replace;
    * ``"run"``     — a keyword argument of ``run_workload``
      (``gc_config``, ``compaction_enabled``, ``seed``, ...);
    * ``"spec"``    — a WorkloadSpec field to replace.
    """

    name: str
    values: tuple
    target: str = "machine"

    def __post_init__(self):
        if self.target not in ("machine", "run", "spec"):
            raise ValueError(f"unknown axis target {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass
class SweepResult:
    """Grid of runs: point (an axis-value dict, frozen) -> RunResult."""

    axes: tuple[Axis, ...]
    results: dict[tuple, RunResult] = field(default_factory=dict)
    failures: dict[tuple, Exception] = field(default_factory=dict)

    def point(self, **coords) -> RunResult:
        key = tuple(coords[a.name] for a in self.axes)
        return self.results[key]

    def _axis_order(self, key: tuple) -> tuple:
        # Order rows by declaration position along each axis, not by
        # repr of the values — repr-sorting put heap sizes 200/2000/
        # 20000 MiB in the order 200, 20000, 2000.
        def position(axis: Axis, value):
            try:
                return axis.values.index(value)
            except ValueError:
                return len(axis.values)
        return tuple(position(a, v) for a, v in zip(self.axes, key))

    def table(self, metric, metric_name: str = "value") -> str:
        """Render the grid: one row per point, metric in the last column."""
        rows = []
        for key in sorted(self.results, key=self._axis_order):
            rows.append([*[str(v) for v in key],
                         metric(self.results[key])])
        for key in sorted(self.failures, key=self._axis_order):
            rows.append([*[str(v) for v in key],
                         type(self.failures[key]).__name__])
        return format_table([a.name for a in self.axes] + [metric_name],
                            rows)

    def series(self, metric) -> dict[tuple, float]:
        return {k: metric(r) for k, r in self.results.items()}


def sweep(spec: WorkloadSpec, machine: MachineConfig, axes: list[Axis],
          fidelity: Fidelity | None = None,
          catch: tuple[type, ...] = (), jobs: int = 1, store=None,
          on_error: str = "raise", max_retries: int | None = None,
          retry_backoff: float = 0.0,
          **base_run_kwargs) -> SweepResult:
    """Run ``spec`` at every point of the axis product.

    ``catch`` lists exception types recorded as failures instead of
    raised (e.g. ``OutOfManagedMemory`` in heap-size sweeps, matching the
    paper's OOM cells in Fig 14) — the semantics are identical whether
    the grid is evaluated serially or with ``jobs`` worker processes.
    ``store`` is an optional :class:`repro.exec.ResultStore` for reuse
    of grid points across invocations.

    ``on_error`` widens the failure policy the same way
    :func:`~repro.harness.suite.characterize_suite` does: ``"skip"``
    records *any* exception as a grid failure instead of only the
    ``catch`` types, ``"retry"`` additionally raises the transient
    retry budget (``max_retries`` defaults to 3 there, 1 otherwise).
    """
    from repro.exec.jobs import JobSpec
    from repro.exec.pool import JobFailure, run_jobs

    if on_error not in ("raise", "skip", "retry"):
        raise ValueError(f"unknown on_error policy {on_error!r}")
    if max_retries is None:
        max_retries = 3 if on_error == "retry" else 1
    if on_error != "raise":
        catch = (Exception,)

    fidelity = fidelity or Fidelity.default()
    result = SweepResult(axes=tuple(axes))
    combos = []
    jobspecs = []
    for combo in itertools.product(*(a.values for a in axes)):
        m = machine
        s = spec
        run_kwargs = dict(base_run_kwargs)
        for axis, value in zip(axes, combo):
            if axis.target == "machine":
                m = dc_replace(m, **{axis.name: value})
            elif axis.target == "spec":
                s = dc_replace(s, **{axis.name: value})
            else:
                run_kwargs[axis.name] = value
        combos.append(combo)
        jobspecs.append(JobSpec(spec=s, machine=m, fidelity=fidelity,
                                run_kwargs=run_kwargs))
    outcomes = run_jobs(jobspecs, n_jobs=jobs, store=store, catch=catch,
                        max_retries=max_retries,
                        retry_backoff=retry_backoff)
    for combo, outcome in zip(combos, outcomes):
        if isinstance(outcome, JobFailure):
            result.failures[combo] = outcome.error
        else:
            result.results[combo] = outcome
    return result
