"""Span JSONL -> Chrome ``about:tracing`` / Perfetto trace export.

The recorder (:mod:`repro.obs.spans`) writes one ``spans-<pid>.jsonl``
per process; this module folds a whole observability directory into a
single Chrome Trace Event Format JSON — complete duration events
(``"ph": "X"``) on the shared monotonic timeline, one "thread" row per
process — which both ``chrome://tracing`` and https://ui.perfetto.dev
load directly.

The mapping is loss-tolerant by design in one direction only: every
span field round-trips through the exported event (name, timing, ids,
pid, attributes travel in ``args``), which the schema-stability test
asserts against a committed fixture.  Torn trailing lines (a worker
killed mid-write) are skipped, matching the campaign manifest's
read-side tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import SPAN_SCHEMA


def load_spans(obs_dir: str | Path) -> list[dict]:
    """Every span record under ``obs_dir``, across all process files.

    Ordered by start time; unparseable lines (torn tails) and records
    from a different schema version are skipped.
    """
    spans: list[dict] = []
    paths = sorted(Path(obs_dir).glob("spans-*.jsonl")) + \
        sorted(Path(obs_dir).glob("spans-*.jsonl.1"))   # rotated gens
    required = ("span_id", "name", "pid", "start_us", "dur_us")
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue             # unreadable/vanished file: skip, don't die
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if (isinstance(rec, dict)
                    and rec.get("schema") == SPAN_SCHEMA
                    and all(k in rec for k in required)):
                spans.append(rec)
    spans.sort(key=lambda r: (r.get("start_us", 0), r.get("span_id", "")))
    return spans


def spans_to_chrome(spans: list[dict]) -> dict:
    """Chrome Trace Event Format document for a span list.

    All events share one ``pid`` (the trace viewer's "process" groups
    the whole run) and use the recording process's pid as ``tid``, so
    the scheduler and each worker get their own swim lane.  Span ids
    and parent links ride in ``args`` next to the user attributes —
    Perfetto shows them in the selection panel, and
    :func:`chrome_to_spans` reads them back.
    """
    events: list[dict] = []
    pids = sorted({rec["pid"] for rec in spans})
    for pid in pids:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": pid,
            "args": {"name": f"process {pid}"},
        })
    for rec in spans:
        events.append({
            "ph": "X",
            "name": rec["name"],
            "cat": "repro",
            "pid": 1,
            "tid": rec["pid"],
            "ts": rec["start_us"],
            "dur": rec["dur_us"],
            "args": {
                "span_id": rec["span_id"],
                "parent_id": rec.get("parent_id"),
                "trace_id": rec.get("trace_id"),
                **(rec.get("attrs") or {}),
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_to_spans(doc: dict) -> list[dict]:
    """Inverse of :func:`spans_to_chrome` (the round-trip guarantee).

    Reconstructs span records from the exported events; metadata
    (``ph: "M"``) events are ignored.
    """
    spans: list[dict] = []
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        trace_id = args.pop("trace_id", None)
        spans.append({"schema": SPAN_SCHEMA, "trace_id": trace_id,
                      "span_id": span_id, "parent_id": parent_id,
                      "name": ev["name"], "pid": ev["tid"],
                      "start_us": ev["ts"], "dur_us": ev["dur"],
                      "attrs": args})
    spans.sort(key=lambda r: (r.get("start_us", 0), r.get("span_id", "")))
    return spans


def export_chrome_trace(obs_dir: str | Path,
                        out_path: str | Path) -> int:
    """Write the Perfetto-loadable JSON for ``obs_dir``; returns the
    number of span events exported."""
    spans = load_spans(obs_dir)
    doc = spans_to_chrome(spans)
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, sort_keys=True) + "\n",
                        encoding="utf-8")
    return len(spans)
