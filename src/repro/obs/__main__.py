"""``python -m repro.obs`` — alias for the ``repro-obs`` CLI."""

from repro.obs.report import main

if __name__ == "__main__":
    raise SystemExit(main())
