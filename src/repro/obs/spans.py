"""Span tracing: nested timed regions emitted as append-only JSONL.

A *span* is one timed region of the pipeline — a suite run, one job,
one warmup consume — with a name, monotonic start/duration, arbitrary
JSON-able attributes, and a parent link.  Nesting is tracked with a
``contextvars`` stack, so ``with span("run.measure"):`` inside
``with span("job"):`` parents automatically; across process boundaries
the scheduler passes its :class:`SpanContext` into the worker, which
adopts it as the parent of everything it records (see
:mod:`repro.exec.pool`).

Records land in ``<obs_dir>/spans-<pid>.jsonl`` — one file per process,
so concurrent workers never interleave partial lines.  Writes are
buffered and flushed whenever the span stack empties (end of a job in a
worker, end of the batch in the parent), keeping the hot path free of
syscalls.  Timestamps are ``time.monotonic_ns`` microseconds: on Linux
``CLOCK_MONOTONIC`` is system-wide, so spans from parent and workers
share one timeline.

Span ids are ``"<pid>-<counter>"`` — unique without entropy, stable for
tests, and meaningful in a post-mortem (which process emitted what).
"""

from __future__ import annotations

import contextvars
import json
import os
import time

#: bump when the JSONL record shape changes (the exporter and the
#: schema-stability fixture test both key on it)
SPAN_SCHEMA = 1

#: buffered records before an early flush (stack-empty flushes anyway)
_FLUSH_EVERY = 256

#: per-process span-file byte budget (``REPRO_OBS_MAX_MB`` overrides;
#: half the budget per generation, two generations kept — see flush)
ENV_MAX_MB = "REPRO_OBS_MAX_MB"
_DEFAULT_MAX_MB = 64.0


def _max_bytes() -> int:
    try:
        mb = float(os.environ.get(ENV_MAX_MB, ""))
    except ValueError:
        mb = _DEFAULT_MAX_MB
    if mb <= 0:
        mb = _DEFAULT_MAX_MB
    return int(mb * 1024 * 1024)


class SpanContext:
    """Picklable (trace_id, span_id) pair linking spans across processes."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def as_tuple(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    def __eq__(self, other) -> bool:
        return (isinstance(other, SpanContext)
                and self.as_tuple() == other.as_tuple())

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


#: the innermost live SpanContext of this task/thread (None at top level)
_CURRENT: contextvars.ContextVar[SpanContext | None] = \
    contextvars.ContextVar("repro_obs_span", default=None)


class SpanRecorder:
    """Buffers finished spans and appends them to the process's JSONL."""

    def __init__(self, obs_dir: str, trace_id: str):
        self.obs_dir = obs_dir
        self.trace_id = trace_id
        self.pid = os.getpid()
        self._seq = 0
        self._depth = 0
        self._buffer: list[str] = []

    @property
    def path(self) -> str:
        return os.path.join(self.obs_dir, f"spans-{self.pid}.jsonl")

    def next_id(self) -> str:
        self._seq += 1
        return f"{self.pid}-{self._seq}"

    def emit(self, name: str, start_us: int, dur_us: int, span_id: str,
             parent_id: str | None, attrs: dict | None) -> None:
        rec = {"schema": SPAN_SCHEMA, "trace_id": self.trace_id,
               "span_id": span_id, "parent_id": parent_id, "name": name,
               "pid": self.pid, "start_us": start_us, "dur_us": dur_us,
               "attrs": attrs or {}}
        self._buffer.append(json.dumps(rec, sort_keys=True))
        if self._depth == 0 or len(self._buffer) >= _FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        os.makedirs(self.obs_dir, exist_ok=True)
        data = "\n".join(self._buffer) + "\n"
        # Week-long fabric campaigns must not fill the shared obs dir:
        # when the live file would exceed half the byte budget it
        # rotates to ``<path>.1`` (atomically evicting the previous,
        # oldest generation), bounding this process at ~the budget
        # while the newest spans stay intact.  The exporter's glob
        # (``spans-*.jsonl*``) still picks the rotated file up.
        cap = _max_bytes() // 2
        try:
            if os.path.getsize(self.path) + len(data) > cap:
                os.replace(self.path, self.path + ".1")
        except OSError:
            pass
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(data)
        self._buffer.clear()


class Span:
    """Context manager for one timed region (used via :func:`obs.span`)."""

    __slots__ = ("recorder", "name", "attrs", "context", "_parent_id",
                 "_token", "_start_ns")

    def __init__(self, recorder: SpanRecorder, name: str,
                 parent: SpanContext | None, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        if parent is None:
            parent = _CURRENT.get()
        self._parent_id = parent.span_id if parent is not None else None
        self.context = SpanContext(recorder.trace_id, recorder.next_id())
        self._token = None
        self._start_ns = 0

    def __enter__(self) -> "Span":
        self.recorder._depth += 1
        self._token = _CURRENT.set(self.context)
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.monotonic_ns()
        _CURRENT.reset(self._token)
        self.recorder._depth -= 1
        if exc_type is not None:
            self.attrs = dict(self.attrs)
            self.attrs["error"] = exc_type.__name__
        self.recorder.emit(
            self.name, self._start_ns // 1000,
            max(0, (end_ns - self._start_ns) // 1000),
            self.context.span_id, self._parent_id, self.attrs)
        return False

    def set_attr(self, key: str, value) -> None:
        """Attach one JSON-able attribute to the span before it closes."""
        self.attrs[key] = value


class _NoopSpan:
    """Shared do-nothing stand-in returned while obs is disabled.

    Stateless, so one instance is safely reusable (and reentrant) as a
    context manager — the disabled path allocates nothing.
    """

    __slots__ = ()
    context = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def current_context() -> SpanContext | None:
    """The innermost live span's context (for cross-process handoff)."""
    return _CURRENT.get()


def adopt(parent: SpanContext | None):
    """Set ``parent`` as the current context; returns the reset token.

    Used by pool workers to parent their job spans under the
    scheduler's span.  Pass the token to :func:`restore`.
    """
    return _CURRENT.set(parent)


def restore(token) -> None:
    _CURRENT.reset(token)
