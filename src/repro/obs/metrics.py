"""Process-local metrics: counters, gauges, log-scale histograms.

A :class:`MetricsRegistry` is a flat name -> instrument map.  Names are
dotted paths (``pool.jobs_executed``, ``store.get_hits``); instruments
are created on first touch, so call sites never pre-register.  Three
instrument kinds cover everything the pipeline reports:

* **counter** — monotonically increasing total (jobs, hits, retries,
  bytes);
* **gauge** — last-written value (queue depth, cost-model size); merges
  take the max, since per-worker "depth" readings have no meaningful
  sum;
* **histogram** — log-scale (base-2) bucketed distribution of positive
  samples (job seconds, phase seconds, peak heap bytes).  Buckets cost
  O(64) memory worst case and merging is bucket-wise addition, so a
  worker's whole distribution travels in one small dict.

Workers :func:`MetricsRegistry.snapshot` their registry into a plain
JSON-able dict; the parent folds it back with
:meth:`MetricsRegistry.merge` — counters and histograms add, gauges
max.  :meth:`to_json` and :meth:`to_prometheus` are the two dump
formats (``metrics.json`` / Prometheus textfile exposition).
"""

from __future__ import annotations

import math

#: schema marker embedded in snapshots and dumps
METRICS_SCHEMA = 1


class Histogram:
    """Log-scale (powers-of-two) histogram of positive samples.

    Bucket ``b`` counts samples with ``2**(b-1) < x <= 2**b`` (``x`` in
    the recorded unit); non-positive samples land in a dedicated
    underflow bucket.  ``frexp`` gives the bucket index without a log
    call, so ``record`` is a few arithmetic ops.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket exponent -> sample count ("u" = underflow, x <= 0)
        self.buckets: dict = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            key = "u"
        else:
            mantissa, exponent = math.frexp(value)
            # frexp: value = mantissa * 2**exponent, 0.5 <= mantissa < 1,
            # so 2**(exponent-1) <= value < 2**exponent.
            key = exponent if mantissa > 0.5 else exponent - 1
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": {str(k): v for k, v in
                            sorted(self.buckets.items(), key=str)}}

    def merge_json(self, data: dict) -> None:
        """Fold a :meth:`to_json` snapshot into this histogram."""
        self.count += int(data.get("count", 0))
        self.total += float(data.get("total", 0.0))
        lo, hi = data.get("min"), data.get("max")
        if lo is not None and lo < self.min:
            self.min = lo
        if hi is not None and hi > self.max:
            self.max = hi
        for key, n in (data.get("buckets") or {}).items():
            key = key if key == "u" else int(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(n)


def escape_label_value(value) -> str:
    """Escape a Prometheus label value per the text-format spec."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text-format spec."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def labeled(name: str, **labels) -> str:
    """Instrument name carrying Prometheus labels, values escaped.

    The registry stays a flat name -> instrument map; labels are
    encoded into the name (``fabric.worker.leases{worker="w1"}``) at
    write time and split back out by :meth:`MetricsRegistry.
    to_prometheus`, which emits one ``# HELP``/``# TYPE`` family header
    shared by all label variants.  Values are escaped here, once, so
    arbitrary worker ids (quotes, backslashes, newlines) can't corrupt
    the exposition.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"'
                     for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _split_labels(name: str) -> tuple[str, str]:
    """``base{k="v"}`` -> (``base``, ``k="v"``); plain names -> ("")."""
    base, brace, rest = name.partition("{")
    return base, rest[:-1] if brace and rest.endswith("}") else ""


class MetricsRegistry:
    """Flat name -> instrument registry with snapshot/merge."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- write side ------------------------------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` (created at 0 on first touch)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample under ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    # -- snapshot / merge (worker -> parent) ----------------------------

    def snapshot(self) -> dict:
        """Plain JSON-able dict of everything recorded so far."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: h.to_json()
                           for name, h in self.histograms.items()},
        }

    def merge(self, snap: dict) -> None:
        """Fold a worker snapshot in: counters/histograms add, gauges max.

        Snapshots are cumulative per process, so the caller must merge
        each worker's *final* snapshot exactly once (the pool keys
        pending snapshots by worker pid for exactly this reason).
        """
        if not snap or snap.get("schema") != METRICS_SCHEMA:
            return
        for name, value in (snap.get("counters") or {}).items():
            self.add(name, value)
        for name, value in (snap.get("gauges") or {}).items():
            if value >= self.gauges.get(name, -math.inf):
                self.gauges[name] = value
        for name, data in (snap.get("histograms") or {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_json(data)

    # -- dump formats ----------------------------------------------------

    def to_json(self) -> dict:
        return self.snapshot()

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus textfile exposition of the registry.

        Dotted metric names become underscore-separated (Prometheus
        identifier rules); label-carrying names built with
        :func:`labeled` are split back into a shared family, so every
        family gets exactly one ``# HELP``/``# TYPE`` header ahead of
        its first series.  Histograms expose cumulative ``_bucket``
        series with ``le`` = the bucket's upper bound (``2**b``), plus
        ``_sum`` and ``_count``.
        """
        def ident(base: str) -> str:
            cleaned = "".join(c if c.isalnum() else "_" for c in base)
            return f"{prefix}_{cleaned}"

        lines: list[str] = []
        seen_meta: set[str] = set()

        def meta(pname: str, base: str, kind: str) -> None:
            if pname not in seen_meta:
                seen_meta.add(pname)
                lines.append(f"# HELP {pname} "
                             f"{escape_help(base)} ({kind})")
                lines.append(f"# TYPE {pname} {kind}")

        def series(pname: str, label_body: str, extra: str = "") -> str:
            body = ",".join(p for p in (label_body, extra) if p)
            return f"{pname}{{{body}}}" if body else pname

        def by_family(names):
            return sorted(names, key=_split_labels)

        for name in by_family(self.counters):
            base, label_body = _split_labels(name)
            pname = ident(base)
            meta(pname, base, "counter")
            lines.append(f"{series(pname, label_body)} "
                         f"{self.counters[name]:g}")
        for name in by_family(self.gauges):
            base, label_body = _split_labels(name)
            pname = ident(base)
            meta(pname, base, "gauge")
            lines.append(f"{series(pname, label_body)} "
                         f"{self.gauges[name]:g}")
        for name in by_family(self.histograms):
            hist = self.histograms[name]
            base, label_body = _split_labels(name)
            pname = ident(base)
            meta(pname, base, "histogram")
            def bucket(le: str, count: int) -> str:
                name_ = series(pname + "_bucket", label_body,
                               'le="%s"' % le)
                return f"{name_} {count}"

            cumulative = hist.buckets.get("u", 0)
            if "u" in hist.buckets:
                lines.append(bucket("0", cumulative))
            for b in sorted(k for k in hist.buckets if k != "u"):
                cumulative += hist.buckets[b]
                lines.append(bucket(f"{2.0 ** b:g}", cumulative))
            lines.append(bucket("+Inf", hist.count))
            lines.append(f"{series(pname + '_sum', label_body)} "
                         f"{hist.total:g}")
            lines.append(f"{series(pname + '_count', label_body)} "
                         f"{hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")
