"""Regression sentinel: per-workload performance baselines on JSONL.

The simulator's determinism anchor makes continuous regression
detection unusually crisp: ``RunResult.seconds`` is *simulated* time
and CPI is a pure function of the op stream and machine config, so two
fault-free runs of the same commit produce bit-identical values on any
host.  A baseline history of those values is therefore flat until a
*code change* moves them — exactly the signal a CI sentinel wants —
while wall-clock seconds ride along report-only for the humans.

Storage is an append-only JSONL file (``bench_history.jsonl``) written
under the same cross-process discipline as the scheduler's cost model
sidecar: appends take an exclusive ``flock`` on ``<path>.lock``, so
concurrent CI shards interleave whole records, never torn lines.  Each
record keys a series by ``(key, engine, fidelity)`` where ``key`` is
the scheduler's :func:`~repro.exec.costmodel.cost_key` — the
work-determining inputs — so histories survive result-cache
invalidation but fork when the engine or instruction budget changes.

Detection runs an EWMA mean/variance over each series and judges the
*newest* sample with a z-score.  Deterministic series have zero
variance, so sigma is floored at ``rel_floor`` (1%) of the mean: a 20%
jump then scores z = 20 against a threshold of 6, while float-level
jitter scores ~0.  A relative floor of ``pct_floor`` percent guards
the other direction — a tiny absolute drift on a microsecond-scale
workload can have a huge z but is not a regression anyone should gate
on.  Both must trip for a ``regression`` verdict.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import time
from pathlib import Path

try:
    import fcntl
except ImportError:          # non-POSIX: locking degrades to a no-op
    fcntl = None

#: bump when the record shape changes; foreign schemas are skipped
BASELINE_SCHEMA = 1

#: default history filename (committed under benchmarks/ for CI)
BASELINE_FILENAME = "bench_history.jsonl"

#: EWMA smoothing factor — matches the scheduler cost model
DEFAULT_ALPHA = 0.3

#: z-score a newest sample must reach to be anomalous
DEFAULT_Z_THRESHOLD = 6.0

#: sigma floor as a fraction of the EWMA mean (deterministic series
#: otherwise divide by zero); 1% means z == percent-change for them
DEFAULT_REL_FLOOR = 0.01

#: minimum percent change for a verdict — below this, never flag
DEFAULT_PCT_FLOOR = 5.0

#: prior samples a series needs before its newest one is judged
DEFAULT_MIN_HISTORY = 2

#: metrics judged for regressions (deterministic across hosts);
#: ``wall_seconds`` is recorded but report-only
GATED_METRICS = ("sim_seconds", "cpi")


def make_record(*, key: str, workload: str, engine: str, fidelity: str,
                sim_seconds: float, cpi: float,
                wall_seconds: float | None = None,
                meta: dict | None = None) -> dict:
    """One history record for the newest observation of a series."""
    rec = {"schema": BASELINE_SCHEMA, "t": time.time(), "key": key,
           "workload": workload, "engine": engine, "fidelity": fidelity,
           "sim_seconds": float(sim_seconds), "cpi": float(cpi)}
    if wall_seconds is not None:
        rec["wall_seconds"] = float(wall_seconds)
    if meta:
        rec["meta"] = dict(meta)
    return rec


def series_key(rec: dict) -> tuple[str, str, str]:
    return (str(rec.get("key")), str(rec.get("engine")),
            str(rec.get("fidelity")))


class BaselineStore:
    """Append-only, flock-fenced JSONL history of baseline records."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive cross-process lock fencing appends.

        Same flock discipline as the cost-model sidecar: concurrent CI
        shards appending to one shared history serialize here, so the
        file only ever grows by whole records.
        """
        if fcntl is None:
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        with lock_path.open("a+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def append(self, records: list[dict]) -> None:
        if not records:
            return
        payload = "".join(json.dumps(r, sort_keys=True) + "\n"
                          for r in records)
        with self._locked():
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())

    def load(self) -> list[dict]:
        """All valid records in file order (torn/foreign lines skipped)."""
        out: list[dict] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return out
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if (isinstance(rec, dict)
                    and rec.get("schema") == BASELINE_SCHEMA):
                out.append(rec)
        return out

    def series(self) -> dict[tuple[str, str, str], list[dict]]:
        """``(key, engine, fidelity) -> records`` in append order."""
        out: dict[tuple[str, str, str], list[dict]] = {}
        for rec in self.load():
            out.setdefault(series_key(rec), []).append(rec)
        return out


def judge_series(values: list[float], *, alpha: float = DEFAULT_ALPHA,
                 z_threshold: float = DEFAULT_Z_THRESHOLD,
                 rel_floor: float = DEFAULT_REL_FLOOR,
                 pct_floor: float = DEFAULT_PCT_FLOOR,
                 min_history: int = DEFAULT_MIN_HISTORY) -> dict:
    """Judge the newest value of one metric series against its EWMA.

    Folds every value but the last into an EWMA mean/variance, then
    scores the last.  Returns ``{verdict, baseline, latest, pct, z,
    n}`` where verdict is ``regression`` (slower and both the z and
    percent floors tripped), ``improvement`` (the mirror image),
    ``ok``, or ``insufficient`` (< ``min_history`` prior samples).
    """
    n = len(values)
    if n < min_history + 1:
        return {"verdict": "insufficient", "baseline": None,
                "latest": values[-1] if values else None,
                "pct": None, "z": None, "n": n}
    mean = values[0]
    var = 0.0
    for x in values[1:-1]:
        diff = x - mean
        incr = alpha * diff
        mean += incr
        var = (1.0 - alpha) * (var + diff * incr)
    latest = values[-1]
    sigma = max(math.sqrt(max(var, 0.0)), rel_floor * abs(mean), 1e-12)
    z = (latest - mean) / sigma
    pct = 100.0 * (latest - mean) / mean if mean else 0.0
    if z >= z_threshold and pct >= pct_floor:
        verdict = "regression"
    elif z <= -z_threshold and pct <= -pct_floor:
        verdict = "improvement"
    else:
        verdict = "ok"
    return {"verdict": verdict, "baseline": mean, "latest": latest,
            "pct": pct, "z": z, "n": n}


def detect(records: list[dict], *, metrics: tuple[str, ...] = GATED_METRICS,
           **judge_kwargs) -> list[dict]:
    """Judge every (series, metric) pair; one verdict row each.

    Rows are sorted worst-first (regressions, then by |z|) so the
    verdict table leads with what matters.
    """
    by_series: dict[tuple[str, str, str], list[dict]] = {}
    for rec in records:
        by_series.setdefault(series_key(rec), []).append(rec)
    rows: list[dict] = []
    for key, recs in sorted(by_series.items()):
        for metric in metrics:
            values = [float(r[metric]) for r in recs
                      if isinstance(r.get(metric), (int, float))]
            if not values:
                continue
            row = judge_series(values, **judge_kwargs)
            row.update({"workload": recs[-1].get("workload") or key[0],
                        "key": key[0], "engine": key[1],
                        "fidelity": key[2], "metric": metric})
            rows.append(row)
    order = {"regression": 0, "improvement": 1, "ok": 2, "insufficient": 3}
    rows.sort(key=lambda r: (order.get(r["verdict"], 9),
                             -abs(r["z"] or 0.0)))
    return rows


def records_for_suite(results, *, machine, fidelity, engine: str,
                      seed: int = 0) -> list[dict]:
    """Baseline records for a finished suite's ``RunResult`` list.

    Keys each record with the scheduler's cost key so histories line
    up with what the fleet already tracks, and stamps the engine and
    fidelity spelling the series forks on.
    """
    from repro.exec.costmodel import cost_key
    from repro.exec.jobs import JobSpec
    fid = (f"w{fidelity.warmup_instructions}"
           f"+m{fidelity.measure_instructions}")
    out = []
    for r in results:
        job = JobSpec(spec=r.spec, machine=machine, fidelity=fidelity,
                      seed=seed)
        out.append(make_record(
            key=cost_key(job), workload=r.spec.name, engine=engine,
            fidelity=fid, sim_seconds=r.seconds, cpi=r.counters.cpi,
            wall_seconds=getattr(r, "wall_seconds", None),
            meta={"machine": machine.name, "seed": seed}))
    return out
