"""``repro.obs`` — self-observability for the characterization pipeline.

The paper's method is measurement, and from PR 1 on the pipeline itself
(pool, stores, campaign runner, warm workers, cost model) had become a
measurement system with no instruments of its own.  This package is the
missing layer — three pillars, zero dependencies:

* **spans** (:mod:`repro.obs.spans`) — nested timed regions with
  parent/child links that survive process boundaries (the scheduler's
  span context travels in the job dispatch payload), emitted as
  append-only JSONL and exportable to Chrome ``about:tracing`` /
  Perfetto JSON (:mod:`repro.obs.exporter`);
* **metrics** (:mod:`repro.obs.metrics`) — a process-local registry of
  counters, gauges and log-scale histograms; workers snapshot it into
  their result stream and the parent merges, so one dump covers the
  whole tree of processes.  Dumps are JSON or Prometheus textfile;
* **profiling** (:mod:`repro.obs.profiler`) — phase timers throughout
  the runner/simulator plus an opt-in per-job ``cProfile`` /
  ``tracemalloc`` harness.

Everything is OFF by default and the guard is one module-global ``is``
check (:func:`enabled`), so the instrumented hot paths cost nothing
measurable when disabled — the throughput bench asserts < 2% overhead
even with observability fully *enabled*.  Enable with
:func:`configure` (the CLI's ``--obs-dir``), which also exports the
configuration through ``REPRO_OBS_*`` environment variables so pool
worker processes (fork or spawn) pick it up automatically.

``repro-obs report <dir>`` (or ``python -m repro.obs report <dir>``)
renders the per-phase/per-workload breakdown from a recorded directory.
"""

from __future__ import annotations

import os
import time

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import (NOOP_SPAN, Span, SpanContext, SpanRecorder,
                             current_context)

__all__ = [
    "configure", "configure_from_env", "enabled", "shutdown",
    "span", "current_context", "current_ids", "SpanContext",
    "add", "gauge_set", "observe",
    "metrics_snapshot", "merge_snapshot", "write_metrics",
    "profile_mode", "obs_dir", "flush",
    "MetricsRegistry", "Histogram", "Span", "SpanRecorder",
]

#: environment keys that propagate the configuration to worker processes
ENV_DIR = "REPRO_OBS_DIR"
ENV_SPANS = "REPRO_OBS_SPANS"
ENV_PROFILE = "REPRO_OBS_PROFILE"
ENV_TRACE_ID = "REPRO_OBS_TRACE_ID"
ENV_SERIES = "REPRO_OBS_SERIES"

_PROFILE_MODES = ("cprofile", "tracemalloc")


class _ObsState:
    """Everything one enabled process holds (one per pid)."""

    __slots__ = ("dir", "recorder", "registry", "profile", "trace_id",
                 "pid", "sampler")

    def __init__(self, obs_dir: str | None, spans_on: bool,
                 profile: str | None, trace_id: str,
                 series_on: bool = False):
        self.dir = obs_dir
        self.trace_id = trace_id
        self.profile = profile
        self.pid = os.getpid()
        self.recorder = (SpanRecorder(obs_dir, trace_id)
                         if obs_dir and spans_on else None)
        self.registry = MetricsRegistry()
        self.sampler = None
        if obs_dir and series_on:
            from repro.obs.timeseries import Sampler
            self.sampler = Sampler(obs_dir)


_STATE: _ObsState | None = None


def enabled() -> bool:
    """True when observability is on in this process (the cheap guard)."""
    return _STATE is not None


def _fresh_trace_id() -> str:
    # Telemetry-only identifier — never feeds the simulator, so wall
    # clock + pid is fine (and keeps span files correlatable to runs).
    return f"{os.getpid():x}-{time.time_ns():x}"


def configure(obs_dir: str | os.PathLike | None = None, *,
              spans: bool = True, profile: str | None = None,
              trace_id: str | None = None, export_env: bool = True,
              series: bool | None = None) -> None:
    """Enable observability in this process (idempotent reconfigure).

    ``obs_dir`` is where span JSONL files, metric dumps, and profiles
    land; with ``obs_dir=None`` only in-memory metrics are collected
    (no span emission).  ``profile`` opts every job into ``"cprofile"``
    or ``"tracemalloc"``.  ``series`` starts the background
    :class:`~repro.obs.timeseries.Sampler`, flushing registry
    snapshots to a size-capped per-pid JSONL ring (interval via
    ``REPRO_OBS_SERIES_INTERVAL``); left unspecified, it follows
    ``REPRO_OBS_SERIES=1`` so the sampler can be switched on from the
    environment without the caller knowing about it (the CLIs pass no
    ``series`` argument).  With ``export_env`` (default) the
    configuration is mirrored into ``REPRO_OBS_*`` environment
    variables so worker processes inherit it.
    """
    global _STATE
    if series is None:
        series = os.environ.get(ENV_SERIES, "") == "1"
    if profile is not None and profile not in _PROFILE_MODES:
        raise ValueError(f"unknown profile mode {profile!r} "
                         f"(use one of {_PROFILE_MODES})")
    obs_dir = os.fspath(obs_dir) if obs_dir is not None else None
    if obs_dir:
        os.makedirs(obs_dir, exist_ok=True)
    _stop_sampler()
    _STATE = _ObsState(obs_dir, spans, profile,
                       trace_id or _fresh_trace_id(), series)
    if export_env:
        _set_env(ENV_DIR, obs_dir or "")
        _set_env(ENV_SPANS, "1" if (spans and obs_dir) else "0")
        _set_env(ENV_PROFILE, profile or "")
        _set_env(ENV_TRACE_ID, _STATE.trace_id)
        _set_env(ENV_SERIES, "1" if (series and obs_dir) else "")


def _stop_sampler() -> None:
    if _STATE is not None and _STATE.sampler is not None \
            and _STATE.pid == os.getpid():
        _STATE.sampler.stop(final_sample=False)


def _set_env(key: str, value: str) -> None:
    if value:
        os.environ[key] = value
    else:
        os.environ.pop(key, None)


def configure_from_env() -> bool:
    """Worker-side init: adopt the parent's ``REPRO_OBS_*`` exports.

    Safe to call unconditionally and repeatedly (the pool does, at
    worker start).  Handles the ``fork`` start method too: a forked
    child inherits the parent's live state, whose pid no longer
    matches — it gets a fresh registry and its own span file, so worker
    snapshots never double-count parent totals.  Returns whether
    observability is enabled afterwards.
    """
    global _STATE
    if _STATE is not None and _STATE.pid == os.getpid():
        return True
    trace_id = os.environ.get(ENV_TRACE_ID)
    obs_dir = os.environ.get(ENV_DIR) or None
    if trace_id is None:
        if _STATE is None:
            return False
        # Forked from a parent that configured without env export:
        # inherit its config, but with a fresh registry and span file.
        stale = _STATE
        _STATE = _ObsState(stale.dir, stale.recorder is not None,
                           stale.profile, stale.trace_id,
                           stale.sampler is not None)
        return True
    _STATE = _ObsState(obs_dir,
                       os.environ.get(ENV_SPANS, "0") == "1",
                       os.environ.get(ENV_PROFILE) or None,
                       trace_id or _fresh_trace_id(),
                       os.environ.get(ENV_SERIES, "") == "1")
    return True


def shutdown(dump: bool = True) -> None:
    """Flush spans, optionally dump metrics into the obs dir, disable.

    Also clears the ``REPRO_OBS_*`` exports, so later child processes
    (or tests) start clean.
    """
    global _STATE
    state = _STATE
    if state is None:
        return
    if state.recorder is not None:
        state.recorder.flush()
    if state.sampler is not None and state.pid == os.getpid():
        state.sampler.stop(final_sample=True)
    if dump and state.dir:
        write_metrics(os.path.join(state.dir, "metrics.json"))
        write_metrics(os.path.join(state.dir, "metrics.prom"))
    _STATE = None
    for key in (ENV_DIR, ENV_SPANS, ENV_PROFILE, ENV_TRACE_ID,
                ENV_SERIES):
        os.environ.pop(key, None)


def obs_dir() -> str | None:
    """The configured output directory, or ``None``."""
    return _STATE.dir if _STATE is not None else None


def profile_mode() -> str | None:
    """``"cprofile"`` / ``"tracemalloc"`` when per-job profiling is on."""
    return _STATE.profile if _STATE is not None else None


def flush() -> None:
    """Force buffered span records to disk (workers call this per job)."""
    if _STATE is not None and _STATE.recorder is not None:
        _STATE.recorder.flush()


# -- spans ---------------------------------------------------------------

def span(name: str, parent: SpanContext | None = None, **attrs):
    """A timed-region context manager (no-op while disabled).

    ``parent`` overrides the implicit contextvar nesting — pool workers
    pass the scheduler's :class:`SpanContext` so job spans parent
    across the process boundary.  Keyword arguments become span
    attributes.
    """
    state = _STATE
    if state is None or state.recorder is None:
        return NOOP_SPAN
    return Span(state.recorder, name, parent, attrs)


def current_ids() -> tuple[str, str] | None:
    """``(trace_id, span_id)`` of the live span, for job payloads."""
    ctx = current_context()
    return ctx.as_tuple() if ctx is not None else None


# -- metrics -------------------------------------------------------------

def add(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op while disabled)."""
    if _STATE is not None:
        _STATE.registry.add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _STATE is not None:
        _STATE.registry.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample (no-op while disabled)."""
    if _STATE is not None:
        _STATE.registry.observe(name, value)


def metrics_snapshot() -> dict | None:
    """The registry as a JSON-able dict, or ``None`` while disabled."""
    if _STATE is None:
        return None
    snap = _STATE.registry.snapshot()
    snap["pid"] = os.getpid()
    return snap


def merge_snapshot(snap: dict | None) -> None:
    """Fold a worker's snapshot into this process's registry."""
    if _STATE is not None and snap:
        _STATE.registry.merge(snap)


def write_metrics(path: str | os.PathLike) -> bool:
    """Dump the registry to ``path`` (Prometheus text for ``.prom``,
    JSON otherwise).  Returns whether anything was written."""
    if _STATE is None:
        return False
    import json
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if path.endswith(".prom"):
        text = _STATE.registry.to_prometheus()
    else:
        text = json.dumps(_STATE.registry.to_json(), indent=2,
                          sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return True
