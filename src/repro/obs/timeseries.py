"""Time-series rings: periodic metric snapshots as capped JSONL.

The PR-5 metrics registry is cumulative and point-in-time — one
``metrics.json`` at shutdown tells you *what* happened, never *when*.
This module adds the longitudinal axis with the same zero-dependency
discipline:

* :class:`SeriesRing` — an append-only JSONL file with two-generation
  size capping: when the live file exceeds half the byte budget it is
  rotated to ``<name>.1`` (evicting the previous ``.1``, i.e. the
  oldest generation) and a fresh live file starts.  Total disk usage is
  bounded by the budget no matter how long the campaign runs, and the
  newest samples are always intact.
* :class:`Sampler` — a daemon thread that flushes a compacted registry
  snapshot (plus the native kernel's live ops-retired counter) to a
  per-pid ring every ``interval`` seconds.  Enabled by
  ``obs.configure(..., series=True)`` or ``REPRO_OBS_SERIES=1`` (which
  worker processes inherit), interval via
  ``REPRO_OBS_SERIES_INTERVAL``.
* :func:`load_series` / :func:`latest_by_source` — torn-tolerant
  readers for the ``repro-obs top``/``tail`` views and the fabric
  service's fleet merge.

Sample records are *compact*: full counter/gauge dicts, but histograms
reduced to ``{count, total, min, max}`` — the buckets stay in the
cumulative dumps, while rates derived from successive ``count``/
``total`` deltas are what a time series is for.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: bump when the sample record shape changes
SERIES_SCHEMA = 1

ENV_SERIES = "REPRO_OBS_SERIES"
ENV_SERIES_INTERVAL = "REPRO_OBS_SERIES_INTERVAL"

DEFAULT_INTERVAL_S = 1.0
#: total byte budget per ring (live file + one rotated generation)
DEFAULT_MAX_BYTES = 8 * 1024 * 1024


def series_interval() -> float:
    try:
        value = float(os.environ.get(ENV_SERIES_INTERVAL, ""))
    except ValueError:
        return DEFAULT_INTERVAL_S
    return value if value > 0 else DEFAULT_INTERVAL_S


def compact_sample(snap: dict | None, *, source: str, seq: int,
                   extra: dict | None = None) -> dict:
    """One ring record from a registry snapshot (may be ``None``)."""
    rec = {"schema": SERIES_SCHEMA, "source": source, "seq": seq,
           "t_wall": time.time(), "t_mono_us": time.monotonic_ns() // 1000,
           "counters": {}, "gauges": {}, "hist": {}}
    if snap:
        rec["counters"] = dict(snap.get("counters") or {})
        rec["gauges"] = dict(snap.get("gauges") or {})
        for name, h in (snap.get("histograms") or {}).items():
            rec["hist"][name] = {"count": h.get("count", 0),
                                 "total": h.get("total", 0.0),
                                 "min": h.get("min"), "max": h.get("max")}
    if extra:
        rec.update(extra)
    return rec


class SeriesRing:
    """Append-only JSONL with two-generation size capping.

    The live file grows to ``max_bytes / 2``, then rotates to
    ``<path>.1`` (``os.replace`` — atomically evicting the previous
    oldest generation) and restarts.  Readers concatenate ``.1`` then
    the live file, so ordering survives rotation.
    """

    def __init__(self, path: str | os.PathLike,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.path = os.fspath(path)
        self.gen_bytes = max(4096, int(max_bytes) // 2)
        self._size = None       # lazily stat'd, then tracked in-process

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if self._size is None:
            try:
                self._size = os.path.getsize(self.path)
            except OSError:
                self._size = 0
        if self._size + len(line) > self.gen_bytes and self._size > 0:
            os.replace(self.path, self.path + ".1")
            self._size = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
        self._size += len(line)

    def read(self) -> list[dict]:
        return load_series(self.path)


def _read_jsonl(path: str) -> list[dict]:
    """Schema-checked, torn-line-tolerant JSONL reader."""
    out: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue        # torn tail from a crashed writer
                if (isinstance(rec, dict)
                        and rec.get("schema") == SERIES_SCHEMA):
                    out.append(rec)
    except OSError:
        pass
    return out


def load_series(path: str | os.PathLike) -> list[dict]:
    """All samples of one ring, oldest generation first."""
    path = os.fspath(path)
    return _read_jsonl(path + ".1") + _read_jsonl(path)


def series_files(directory: str | os.PathLike) -> list[str]:
    """Live ring files (``series-*.jsonl``) under ``directory``."""
    directory = os.fspath(directory)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    return [os.path.join(directory, n) for n in names
            if n.startswith("series-") and n.endswith(".jsonl")]


def load_directory(directory: str | os.PathLike) -> dict[str, list[dict]]:
    """source -> samples for every ring under ``directory``."""
    out: dict[str, list[dict]] = {}
    for path in series_files(directory):
        samples = load_series(path)
        if samples:
            out.setdefault(samples[-1].get("source")
                           or os.path.basename(path), []).extend(samples)
    return out


def latest_by_source(directory: str | os.PathLike) -> dict[str, dict]:
    """The newest sample of each ring under ``directory``."""
    return {src: samples[-1]
            for src, samples in load_directory(directory).items()}


def rate(samples: list[dict], counter: str,
         window: int = 10) -> float | None:
    """Per-second rate of ``counter`` over the last ``window`` samples."""
    pts = [(s["t_wall"], s.get("counters", {}).get(counter))
           for s in samples[-window:]]
    pts = [(t, v) for t, v in pts if v is not None]
    if len(pts) < 2:
        return None
    dt = pts[-1][0] - pts[0][0]
    if dt <= 0:
        return None
    return (pts[-1][1] - pts[0][1]) / dt


class Sampler:
    """Daemon thread flushing registry snapshots to a per-pid ring."""

    def __init__(self, obs_dir: str, *, interval: float | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.interval = interval if interval else series_interval()
        self.source = f"pid-{os.getpid()}"
        self.ring = SeriesRing(
            os.path.join(obs_dir, f"series-{os.getpid()}.jsonl"),
            max_bytes)
        self._seq = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-obs-sampler")
        self._thread.start()

    def sample_once(self) -> dict:
        """Build and append one sample (also the final-flush path)."""
        from repro import obs
        self._seq += 1
        extra = {}
        try:
            from repro.uarch import native
            extra["ops_retired"] = native.ops_retired()
        except Exception:
            pass
        rec = compact_sample(obs.metrics_snapshot(), source=self.source,
                             seq=self._seq, extra=extra)
        try:
            self.ring.append(rec)
        except OSError:
            pass                     # a full/readonly disk never kills a run
        return rec

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self, final_sample: bool = True) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        if final_sample:
            self.sample_once()
