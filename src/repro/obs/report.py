"""``repro-obs`` CLI: summarize a recorded observability directory.

Subcommands:

* ``report <dir>`` — per-phase and per-workload breakdown tables from
  the span JSONL plus the counter/histogram highlights from
  ``metrics.json``.  ``--markdown`` switches to GitHub-flavored pipe
  tables (CI writes this into the job summary).
* ``export <dir> [-o trace.json]`` — fold the span files into one
  Chrome ``about:tracing`` / Perfetto-loadable JSON.

Kept free of third-party imports (unlike :mod:`repro.harness.report`,
which pulls numpy) so the obs package stays usable anywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs.exporter import export_chrome_trace, load_spans


def _table(headers: list[str], rows: list[list[str]],
           markdown: bool = False) -> str:
    if markdown:
        out = ["| " + " | ".join(headers) + " |",
               "|" + "|".join("---" for _ in headers) + "|"]
        out += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(out)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    out += [" | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in rows]
    return "\n".join(out)


def _fmt_seconds(us: float) -> str:
    return f"{us / 1e6:.3f}"


def span_breakdown(spans: list[dict]) -> list[dict]:
    """Aggregate spans by name: count, total/mean/max duration (µs)."""
    agg: dict[str, dict] = {}
    for rec in spans:
        row = agg.setdefault(rec["name"], {"name": rec["name"], "count": 0,
                                           "total_us": 0, "max_us": 0})
        row["count"] += 1
        row["total_us"] += rec["dur_us"]
        row["max_us"] = max(row["max_us"], rec["dur_us"])
    rows = sorted(agg.values(), key=lambda r: -r["total_us"])
    for row in rows:
        row["mean_us"] = row["total_us"] / row["count"]
    return rows


def workload_breakdown(spans: list[dict]) -> list[dict]:
    """Aggregate job spans by their ``workload`` attribute.

    Only top-level ``pool.job`` spans are counted (when any exist), so
    the job count matches the scheduler's and nested phase spans don't
    double-count their parents' duration.
    """
    if any(rec["name"] == "pool.job" for rec in spans):
        spans = [rec for rec in spans if rec["name"] == "pool.job"]
    agg: dict[str, dict] = {}
    for rec in spans:
        workload = (rec.get("attrs") or {}).get("workload")
        if workload is None:
            continue
        row = agg.setdefault(workload, {"workload": workload, "count": 0,
                                        "total_us": 0, "pids": set()})
        row["count"] += 1
        row["total_us"] += rec["dur_us"]
        row["pids"].add(rec["pid"])
    rows = sorted(agg.values(), key=lambda r: -r["total_us"])
    for row in rows:
        row["workers"] = len(row.pop("pids"))
    return rows


def _metrics_highlights(obs_dir: Path) -> tuple[list[list[str]],
                                                list[list[str]]]:
    path = obs_dir / "metrics.json"
    if not path.is_file():
        return [], []
    data = json.loads(path.read_text(encoding="utf-8"))
    counter_rows = [[name, f"{value:g}"]
                    for name, value in sorted(
                        (data.get("counters") or {}).items())]
    hist_rows = []
    for name, hist in sorted((data.get("histograms") or {}).items()):
        count = hist.get("count", 0)
        total = hist.get("total", 0.0)
        mean = total / count if count else 0.0
        hist_rows.append([name, str(count), f"{mean:g}",
                          f"{hist.get('max') or 0:g}"])
    return counter_rows, hist_rows


def render_report(obs_dir: str | Path, markdown: bool = False) -> str:
    """The full ``repro-obs report`` text for one directory."""
    obs_dir = Path(obs_dir)
    spans = load_spans(obs_dir)
    sections: list[str] = []

    heading = "## " if markdown else "== "
    sections.append(f"{heading}Observability report: {obs_dir}")
    sections.append(f"{len(spans)} spans across "
                    f"{len({s['pid'] for s in spans})} process(es)")

    rows = span_breakdown(spans)
    if rows:
        sections.append(f"{heading}Per-phase breakdown")
        sections.append(_table(
            ["span", "count", "total_s", "mean_s", "max_s"],
            [[r["name"], str(r["count"]), _fmt_seconds(r["total_us"]),
              _fmt_seconds(r["mean_us"]), _fmt_seconds(r["max_us"])]
             for r in rows], markdown))

    wrows = workload_breakdown(spans)
    if wrows:
        sections.append(f"{heading}Per-workload breakdown")
        sections.append(_table(
            ["workload", "jobs", "total_s", "workers"],
            [[r["workload"], str(r["count"]),
              _fmt_seconds(r["total_us"]), str(r["workers"])]
             for r in wrows], markdown))

    counter_rows, hist_rows = _metrics_highlights(obs_dir)
    if counter_rows:
        sections.append(f"{heading}Counters")
        sections.append(_table(["counter", "value"], counter_rows,
                               markdown))
    if hist_rows:
        sections.append(f"{heading}Histograms")
        sections.append(_table(["histogram", "count", "mean", "max"],
                               hist_rows, markdown))
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-obs`` / ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize or export a recorded observability dir.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="per-phase/per-workload summary")
    rep.add_argument("obs_dir", help="directory written by --obs-dir")
    rep.add_argument("--markdown", action="store_true",
                     help="emit GitHub-flavored markdown tables")

    exp = sub.add_parser("export", help="write Perfetto-loadable JSON")
    exp.add_argument("obs_dir", help="directory written by --obs-dir")
    exp.add_argument("-o", "--out", default=None,
                     help="output path (default <obs_dir>/trace.json)")

    args = parser.parse_args(argv)
    if not os.path.isdir(args.obs_dir):
        parser.error(f"not a directory: {args.obs_dir}")
    if args.command == "report":
        sys.stdout.write(render_report(args.obs_dir, args.markdown))
    else:
        out = args.out or os.path.join(args.obs_dir, "trace.json")
        count = export_chrome_trace(args.obs_dir, out)
        print(f"wrote {count} span event(s) to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
