"""``repro-obs`` CLI: summarize a recorded observability directory.

Subcommands:

* ``report <dir>`` — per-phase and per-workload breakdown tables from
  the span JSONL plus the counter/histogram highlights from
  ``metrics.json``.  ``--markdown`` switches to GitHub-flavored pipe
  tables (CI writes this into the job summary).
* ``export <dir> [-o trace.json]`` — fold the span files into one
  Chrome ``about:tracing`` / Perfetto-loadable JSON.
* ``top <dir>`` — fleet-merged live view of the ``series-*.jsonl``
  time-series rings: one row per source with sample age, throughput
  rates and native sim-op progress.
* ``tail <dir> [-n N]`` — the last N ring samples across all sources,
  merged by wall-clock time, one JSON line each.
* ``regress <history.jsonl>`` — judge the newest sample of every
  benchmark series in a baseline history
  (:mod:`repro.obs.baseline`); exits 1 on a confirmed regression
  unless ``--report-only``.

Every subcommand must hold up on degenerate input — an empty or
missing directory, zero-span files, foreign-schema lines, a corrupt
``metrics.json`` — with a clean message and exit code, never a
traceback: CI calls these on directories whose producers may have
crashed mid-write.

Kept free of third-party imports (unlike :mod:`repro.harness.report`,
which pulls numpy) so the obs package stays usable anywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.obs import baseline, timeseries
from repro.obs.exporter import export_chrome_trace, load_spans


def _table(headers: list[str], rows: list[list[str]],
           markdown: bool = False) -> str:
    if markdown:
        out = ["| " + " | ".join(headers) + " |",
               "|" + "|".join("---" for _ in headers) + "|"]
        out += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(out)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    out += [" | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in rows]
    return "\n".join(out)


def _fmt_seconds(us: float) -> str:
    return f"{us / 1e6:.3f}"


def span_breakdown(spans: list[dict]) -> list[dict]:
    """Aggregate spans by name: count, total/mean/max duration (µs)."""
    agg: dict[str, dict] = {}
    for rec in spans:
        row = agg.setdefault(rec["name"], {"name": rec["name"], "count": 0,
                                           "total_us": 0, "max_us": 0})
        row["count"] += 1
        row["total_us"] += rec["dur_us"]
        row["max_us"] = max(row["max_us"], rec["dur_us"])
    rows = sorted(agg.values(), key=lambda r: -r["total_us"])
    for row in rows:
        row["mean_us"] = row["total_us"] / row["count"]
    return rows


def workload_breakdown(spans: list[dict]) -> list[dict]:
    """Aggregate job spans by their ``workload`` attribute.

    Only top-level ``pool.job`` spans are counted (when any exist), so
    the job count matches the scheduler's and nested phase spans don't
    double-count their parents' duration.
    """
    if any(rec["name"] == "pool.job" for rec in spans):
        spans = [rec for rec in spans if rec["name"] == "pool.job"]
    agg: dict[str, dict] = {}
    for rec in spans:
        workload = (rec.get("attrs") or {}).get("workload")
        if workload is None:
            continue
        row = agg.setdefault(workload, {"workload": workload, "count": 0,
                                        "total_us": 0, "pids": set()})
        row["count"] += 1
        row["total_us"] += rec["dur_us"]
        row["pids"].add(rec["pid"])
    rows = sorted(agg.values(), key=lambda r: -r["total_us"])
    for row in rows:
        row["workers"] = len(row.pop("pids"))
    return rows


def _metrics_highlights(obs_dir: Path) -> tuple[list[list[str]],
                                                list[list[str]]]:
    path = obs_dir / "metrics.json"
    if not path.is_file():
        return [], []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return [], []            # corrupt dump: report without highlights
    if not isinstance(data, dict):
        return [], []
    counters = data.get("counters")
    counter_rows = [[str(name), f"{value:g}"]
                    for name, value in sorted(
                        (counters or {}).items()
                        if isinstance(counters, dict) else [])
                    if isinstance(value, (int, float))]
    hist_rows = []
    hists = data.get("histograms")
    for name, hist in sorted((hists or {}).items()
                             if isinstance(hists, dict) else []):
        if not isinstance(hist, dict):
            continue
        count = hist.get("count", 0)
        total = hist.get("total", 0.0)
        if not isinstance(count, (int, float)) \
                or not isinstance(total, (int, float)):
            continue
        mean = total / count if count else 0.0
        hist_rows.append([str(name), str(count), f"{mean:g}",
                          f"{hist.get('max') or 0:g}"])
    return counter_rows, hist_rows


def render_report(obs_dir: str | Path, markdown: bool = False) -> str:
    """The full ``repro-obs report`` text for one directory."""
    obs_dir = Path(obs_dir)
    spans = load_spans(obs_dir)
    sections: list[str] = []

    heading = "## " if markdown else "== "
    sections.append(f"{heading}Observability report: {obs_dir}")
    sections.append(f"{len(spans)} spans across "
                    f"{len({s['pid'] for s in spans})} process(es)")

    rows = span_breakdown(spans)
    if rows:
        sections.append(f"{heading}Per-phase breakdown")
        sections.append(_table(
            ["span", "count", "total_s", "mean_s", "max_s"],
            [[r["name"], str(r["count"]), _fmt_seconds(r["total_us"]),
              _fmt_seconds(r["mean_us"]), _fmt_seconds(r["max_us"])]
             for r in rows], markdown))

    wrows = workload_breakdown(spans)
    if wrows:
        sections.append(f"{heading}Per-workload breakdown")
        sections.append(_table(
            ["workload", "jobs", "total_s", "workers"],
            [[r["workload"], str(r["count"]),
              _fmt_seconds(r["total_us"]), str(r["workers"])]
             for r in wrows], markdown))

    counter_rows, hist_rows = _metrics_highlights(obs_dir)
    if counter_rows:
        sections.append(f"{heading}Counters")
        sections.append(_table(["counter", "value"], counter_rows,
                               markdown))
    if hist_rows:
        sections.append(f"{heading}Histograms")
        sections.append(_table(["histogram", "count", "mean", "max"],
                               hist_rows, markdown))
    return "\n\n".join(sections) + "\n"


def _fmt_rate(value: float | None) -> str:
    return f"{value:.1f}" if value is not None else "-"


def _fmt_opt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value) if value is not None else "-"


def render_top(directory: str | Path, markdown: bool = False,
               now: float | None = None) -> str:
    """One row per time-series source: the fleet's live dashboard.

    Merges every ``series-*.jsonl`` ring under ``directory`` (a local
    ``--obs-dir`` or a fabric store's ``obs/``): sample age, sequence
    depth, job/op throughput from windowed counter deltas, and the
    worker-published queue gauges when present.
    """
    data = timeseries.load_directory(directory)
    if not data:
        return f"no time-series rings under {directory}\n"
    now = time.time() if now is None else now
    rows = []
    for src, samples in sorted(data.items()):
        last = samples[-1]
        age = max(0.0, now - float(last.get("t_wall") or now))
        ops = last.get("ops_retired")
        ops_rate = None
        pts = [(s.get("t_wall"), s.get("ops_retired"))
               for s in samples[-10:]]
        pts = [(t, v) for t, v in pts
               if isinstance(t, (int, float)) and isinstance(v, (int, float))]
        if len(pts) >= 2 and pts[-1][0] > pts[0][0]:
            ops_rate = (pts[-1][1] - pts[0][1]) / (pts[-1][0] - pts[0][0])
        jobs = (last.get("counters") or {}).get("pool.jobs_executed")
        rows.append([src, f"{age:.1f}", str(len(samples)),
                     _fmt_opt(last.get("units_run")),
                     _fmt_opt(last.get("spool_pending")),
                     _fmt_opt(jobs),
                     _fmt_rate(timeseries.rate(samples,
                                               "pool.jobs_executed")),
                     _fmt_opt(ops), _fmt_rate(ops_rate)])
    header = "## " if markdown else "== "
    return (f"{header}Fleet time-series: {directory}\n\n"
            + _table(["source", "age_s", "samples", "units", "spool",
                      "jobs", "jobs/s", "sim_ops", "sim_ops/s"],
                     rows, markdown) + "\n")


def render_tail(directory: str | Path, count: int = 20) -> str:
    """The last ``count`` samples across all rings, merged by time."""
    data = timeseries.load_directory(directory)
    if not data:
        return f"no time-series rings under {directory}\n"
    merged = sorted((s for samples in data.values() for s in samples),
                    key=lambda s: s.get("t_wall") or 0.0)
    return "".join(json.dumps(s, sort_keys=True) + "\n"
                   for s in merged[-count:])


def render_regress(history: str | Path, markdown: bool = False,
                   z_threshold: float = baseline.DEFAULT_Z_THRESHOLD,
                   pct_floor: float = baseline.DEFAULT_PCT_FLOOR
                   ) -> tuple[str, int]:
    """The ``repro-obs regress`` verdict table and regression count."""
    records = baseline.BaselineStore(history).load()
    heading = "## " if markdown else "== "
    if not records:
        return (f"{heading}Regression check: {history}\n\n"
                f"no baseline records (empty, missing or "
                f"foreign-schema history)\n", 0)
    verdicts = baseline.detect(records, z_threshold=z_threshold,
                               pct_floor=pct_floor)
    rows = [[v["workload"], v["engine"], v["fidelity"], v["metric"],
             f"{v['baseline']:.6g}" if v["baseline"] is not None else "-",
             f"{v['latest']:.6g}" if v["latest"] is not None else "-",
             f"{v['pct']:+.1f}%" if v["pct"] is not None else "-",
             f"{v['z']:.1f}" if v["z"] is not None else "-",
             v["verdict"]] for v in verdicts]
    n_regressions = sum(1 for v in verdicts if v["verdict"] == "regression")
    n_series = len({(v["key"], v["engine"], v["fidelity"])
                    for v in verdicts})
    body = _table(["workload", "engine", "fidelity", "metric", "baseline",
                   "latest", "delta", "z", "verdict"], rows, markdown)
    summary = (f"{n_regressions} regression(s) across {n_series} "
               f"series ({len(records)} records)")
    return (f"{heading}Regression check: {history}\n\n{body}\n\n"
            f"{summary}\n", n_regressions)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-obs`` / ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize or export a recorded observability dir.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="per-phase/per-workload summary")
    rep.add_argument("obs_dir", help="directory written by --obs-dir")
    rep.add_argument("--markdown", action="store_true",
                     help="emit GitHub-flavored markdown tables")

    exp = sub.add_parser("export", help="write Perfetto-loadable JSON")
    exp.add_argument("obs_dir", help="directory written by --obs-dir")
    exp.add_argument("-o", "--out", default=None,
                     help="output path (default <obs_dir>/trace.json)")

    top = sub.add_parser("top", help="fleet time-series dashboard")
    top.add_argument("obs_dir", help="directory holding series-*.jsonl "
                                     "rings (an --obs-dir, or a fabric "
                                     "store's obs/ subdir)")
    top.add_argument("--markdown", action="store_true",
                     help="emit GitHub-flavored markdown tables")

    tail = sub.add_parser("tail", help="last N merged ring samples")
    tail.add_argument("obs_dir", help="directory holding series-*.jsonl")
    tail.add_argument("-n", "--count", type=int, default=20,
                      help="samples to print (default 20)")

    reg = sub.add_parser("regress",
                         help="judge the newest baseline samples")
    reg.add_argument("history", help="bench_history.jsonl baseline file")
    reg.add_argument("--markdown", action="store_true",
                     help="emit GitHub-flavored markdown tables")
    reg.add_argument("--report-only", action="store_true",
                     help="always exit 0 (PR advisory mode)")
    reg.add_argument("--z-threshold", type=float,
                     default=baseline.DEFAULT_Z_THRESHOLD,
                     help="z-score a sample must reach (default %(default)s)")
    reg.add_argument("--pct-floor", type=float,
                     default=baseline.DEFAULT_PCT_FLOOR,
                     help="minimum percent change to flag "
                          "(default %(default)s)")

    args = parser.parse_args(argv)
    if args.command == "regress":
        text, n_regressions = render_regress(
            args.history, args.markdown,
            z_threshold=args.z_threshold, pct_floor=args.pct_floor)
        sys.stdout.write(text)
        return 1 if n_regressions and not args.report_only else 0
    if not os.path.isdir(args.obs_dir):
        print(f"repro-obs: not a directory: {args.obs_dir}",
              file=sys.stderr)
        return 2
    if args.command == "report":
        sys.stdout.write(render_report(args.obs_dir, args.markdown))
    elif args.command == "top":
        sys.stdout.write(render_top(args.obs_dir, args.markdown))
    elif args.command == "tail":
        sys.stdout.write(render_tail(args.obs_dir, args.count))
    else:
        out = args.out or os.path.join(args.obs_dir, "trace.json")
        count = export_chrome_trace(args.obs_dir, out)
        print(f"wrote {count} span event(s) to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
