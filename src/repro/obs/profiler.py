"""Opt-in per-job profiling: ``cProfile`` call stats or ``tracemalloc``.

Both stdlib profilers are far too heavy to leave on (cProfile slows the
interpreter loop several-fold), so this is the third observability
pillar's *opt-in* end: :func:`profile_job` consults
:func:`repro.obs.profile_mode` and wraps the job body only when the run
was configured with ``--obs-profile``.

* ``cprofile`` mode dumps binary stats to
  ``<obs_dir>/profiles/<job>-<pid>.pstats`` (load with
  :mod:`pstats` or ``snakeviz``) and records the profiled wall time in
  the ``profile.cprofile_seconds`` histogram;
* ``tracemalloc`` mode records the job's peak traced heap into the
  ``profile.peak_heap_bytes`` histogram and appends a JSONL record with
  the top allocation sites to ``<obs_dir>/profiles/heap-<pid>.jsonl``.

Either way the job's result is untouched — profiling only ever adds
telemetry.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import time

from repro import obs

#: allocation sites kept per tracemalloc record
_TOP_SITES = 10


def _profiles_dir() -> str | None:
    base = obs.obs_dir()
    if base is None:
        return None
    path = os.path.join(base, "profiles")
    os.makedirs(path, exist_ok=True)
    return path


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "job"


@contextlib.contextmanager
def profile_job(name: str):
    """Wrap one job body in the configured profiler (no-op by default).

    ``name`` labels the output artifacts; it is sanitized to a safe
    filename component.  Exceptions from the body propagate unchanged —
    partial profiles are still written so a crashing job can be
    profiled post-mortem.
    """
    mode = obs.profile_mode()
    if mode == "cprofile":
        with _cprofile(name):
            yield
    elif mode == "tracemalloc":
        with _tracemalloc(name):
            yield
    else:
        yield


@contextlib.contextmanager
def _cprofile(name: str):
    import cProfile

    prof = cProfile.Profile()
    start = time.monotonic()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        obs.observe("profile.cprofile_seconds", time.monotonic() - start)
        out_dir = _profiles_dir()
        if out_dir is not None:
            path = os.path.join(
                out_dir, f"{_safe_name(name)}-{os.getpid()}.pstats")
            prof.dump_stats(path)
            obs.add("profile.dumps_written")


@contextlib.contextmanager
def _tracemalloc(name: str):
    import tracemalloc

    # Nested/concurrent use in one process: only the outermost scope
    # owns start/stop, inner scopes just read the peak.
    owner = not tracemalloc.is_tracing()
    if owner:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        yield
    finally:
        _current, peak = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        if owner:
            tracemalloc.stop()
        obs.observe("profile.peak_heap_bytes", float(peak))
        out_dir = _profiles_dir()
        if out_dir is not None:
            top = snapshot.statistics("lineno")[:_TOP_SITES]
            rec = {
                "job": name, "pid": os.getpid(), "peak_bytes": peak,
                "top": [{"site": str(stat.traceback[0]),
                         "bytes": stat.size, "blocks": stat.count}
                        for stat in top],
            }
            path = os.path.join(out_dir, f"heap-{os.getpid()}.jsonl")
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
            obs.add("profile.heap_records_written")
