"""Highly-available coordination: election loop, adoption, failover.

:class:`~repro.fabric.coordinator.Coordinator` knows how to *do* the
coordinating — decompose, dispatch, reclaim, settle — but a single
process owning that role is the fabric's last single point of failure:
SIGKILL it and every in-flight campaign stalls with workers idling
behind a queue nobody requeues.  This module removes that by making
the role itself leased:

* any number of :class:`HACoordinator` processes watch the same fabric
  directory; at most one — the holder of the highest epoch in
  ``election/`` (see :class:`~repro.fabric.lease.Election`) — actively
  coordinates, while the rest stand by aging its heartbeat;
* the leader's campaign state is *reconstructible*: submissions are
  persisted under ``submissions/`` before their units are enqueued, so
  a freshly-elected standby rebuilds every open campaign from the
  ledger + store (:meth:`Coordinator.adopt`) and carries on requeueing
  and settling where the corpse left off;
* every ledger mutation the leader makes is **fenced** by its epoch —
  a deposed leader that wakes up later gets
  :class:`~repro.fabric.lease.LeadershipLost` instead of corrupting a
  successor's ledger.

Failover cost is bounded and small: the takeover ttl to *notice*, plus
one adoption scan to rebuild state.  No work is lost — results are in
the content-addressed store, done records survive, and requeue budgets
merely reset (the generous direction).

:meth:`HACoordinator.run_campaign` is failover-transparent from the
submitter's side too: it waits on the submission's *settled marker*
rather than on its own leadership, so the answer assembles correctly
even if a different process finished the coordination.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro import obs
from repro.exec.campaign import (CampaignInterrupted, CampaignManifest,
                                 WorkloadFailure)
from repro.exec.jobs import JobSpec, code_fingerprint
from repro.fabric.coordinator import (DEFAULT_LEASE_TTL,
                                      DEFAULT_MAX_REQUEUES, FabricTimeout,
                                      MANIFEST_NAME, Coordinator,
                                      Submission)
from repro.fabric.lease import LeadershipLost

#: seconds of leader-heartbeat silence before a standby takes over
DEFAULT_COORDINATOR_TTL = 5.0


def observe_outcomes(coord: Coordinator,
                     keys: list[str]) -> dict[int, tuple[str, object]]:
    """Read-only settlement view: outcomes derivable from disk alone.

    Built from the store (done) and failed done-records (failed) — no
    leadership required.  Complete exactly when every index appears,
    which is what the settled marker promises.
    """
    done = coord.ledger.done_records()
    failed_by_key = {
        rec["key"]: rec for rec in done.values()
        if rec.get("status") != "done" and rec.get("key")}
    outcomes: dict[int, tuple[str, object]] = {}
    for i, key in enumerate(keys):
        if coord.store.get(key) is not None:
            outcomes[i] = ("done", key)
        elif key in failed_by_key:
            outcomes[i] = ("failed", WorkloadFailure.from_json(
                failed_by_key[key]["failure"]))
    return outcomes


class HACoordinator:
    """A coordinator that participates in leader election.

    Construct one per would-be coordinator process and drive it with
    :meth:`step` (one election-plus-coordination tick), :meth:`run`
    (the standby service loop), or :meth:`run_campaign` (submit a
    batch and see it through, surviving our own deposition).
    """

    def __init__(self, root: str | Path, *, shared: bool = False,
                 coordinator_id: str | None = None,
                 coordinator_ttl: float = DEFAULT_COORDINATOR_TTL,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = 0.05,
                 max_requeues: int = DEFAULT_MAX_REQUEUES):
        self.coord = Coordinator(
            root, shared=shared, lease_ttl=lease_ttl,
            poll_interval=poll_interval, max_requeues=max_requeues,
            coordinator_id=coordinator_id)
        self.election = self.coord.election
        self.coordinator_id = self.coord.coordinator_id
        self.coordinator_ttl = coordinator_ttl
        self.manifest = CampaignManifest(self.coord.root / MANIFEST_NAME)
        self._subs: dict[str, Submission] = {}
        self._hb_seq = 0
        self._hb_last = 0.0

    @property
    def is_leader(self) -> bool:
        return self.coord.epoch is not None

    def _heartbeat(self) -> None:
        """Publish our coordinator liveness (throttled, best-effort)."""
        now = time.monotonic()
        if now - self._hb_last < self.coordinator_ttl / 3.0:
            return
        self._hb_last = now
        self._hb_seq += 1
        try:
            self.election.heartbeat(
                self.coordinator_id, self.coord.epoch or 0, self._hb_seq)
        except OSError:
            obs.add("fabric.coordinator_io_errors")

    def step(self) -> bool:
        """One tick; returns True when we hold leadership after it.

        Standby: age the leader, take over when it expires.  Leader:
        heartbeat, adopt any open submission we are not yet tracking,
        poll them all, settle the finished ones.  ``LeadershipLost``
        demotes us back to standby; plain I/O errors are weather —
        counted and retried next tick.
        """
        if not self.is_leader:
            self._heartbeat()
            epoch = self.election.try_takeover(
                self.coordinator_id, self.coordinator_ttl)
            if epoch is None:
                return False
            self.coord.epoch = epoch
            self._subs = {}
            self._hb_last = 0.0
            obs.gauge_set("fabric.leader_epoch", float(epoch))
        try:
            self._heartbeat()
            for sid in self.coord.open_submissions():
                if sid not in self._subs:
                    self._subs[sid] = self.coord.adopt(sid)
            for sid, sub in list(self._subs.items()):
                self.coord.poll(sub, self.manifest)
                if sub.done:
                    self.coord.mark_settled(sid)
                    del self._subs[sid]
        except LeadershipLost:
            self.coord.epoch = None
            self._subs = {}
            obs.add("fabric.leadership_lost")
            return False
        except OSError:
            obs.add("fabric.coordinator_io_errors")
        return True

    def run(self, should_stop=None, idle_exit: float | None = None,
            poll_interval: float | None = None) -> None:
        """The standby/leader service loop (``repro-fabric standby``).

        Ticks until the fleet stop marker appears, ``should_stop``
        fires, or — with ``idle_exit`` — no submission has been open
        for that many seconds.  A standby waiting behind a live leader
        is *not* idle while open submissions exist.
        """
        interval = poll_interval if poll_interval is not None \
            else self.coord.poll_interval
        idle_since = time.monotonic()
        try:
            while True:
                if self.coord.ledger.stop_requested():
                    break
                if should_stop is not None and should_stop():
                    break
                self.step()
                if self._subs or self.coord.open_submissions():
                    idle_since = time.monotonic()
                elif idle_exit is not None \
                        and time.monotonic() - idle_since > idle_exit:
                    break
                time.sleep(interval)
        finally:
            if self.is_leader:
                try:
                    self.election.resign(self.coordinator_id)
                except OSError:
                    pass

    def run_campaign(self, specs, machine, fidelity=None, seed: int = 0,
                     timeout: float | None = None, should_stop=None,
                     **run_kwargs):
        """Submit a batch and drive it to a settled SuiteResult.

        Unlike :meth:`Coordinator.run_campaign`, completion is defined
        by the submission's *settled marker*, not by this process's
        own bookkeeping — if we are deposed (or never elected), some
        other coordinator finishes the campaign and we still assemble
        the identical answer from the store.
        """
        from repro.harness.runner import Fidelity

        fidelity = fidelity or Fidelity.default()
        jobs = [JobSpec(spec=spec, machine=machine, fidelity=fidelity,
                        seed=seed, run_kwargs=run_kwargs)
                for spec in specs]
        fingerprint = code_fingerprint()
        self.manifest.begin(fingerprint, total=len(jobs))

        # become leader if the seat is free so our own ticks can
        # coordinate; submission itself is leadership-independent
        self.step()
        with obs.span("fabric.campaign", machine=machine.name,
                      workloads=len(jobs)):
            sub = self.coord.submit(jobs, fingerprint)
            for i, (status, _) in sub.outcomes.items():
                if status == "done":
                    self.manifest.record(sub.keys[i], jobs[i].name,
                                         "done")
            if self.is_leader:
                self._subs[sub.sid] = sub

            deadline = None if timeout is None \
                else time.monotonic() + timeout
            while not self.coord.is_settled(sub.sid):
                if should_stop is not None and should_stop():
                    self.coord.ledger.request_stop()
                    settled = observe_outcomes(self.coord, sub.keys)
                    raise CampaignInterrupted(
                        self.manifest.path,
                        completed=sum(1 for s, _ in settled.values()
                                      if s == "done"),
                        failed=sum(1 for s, _ in settled.values()
                                   if s == "failed"),
                        remaining=len(jobs) - len(settled))
                if deadline is not None \
                        and time.monotonic() > deadline:
                    settled = observe_outcomes(self.coord, sub.keys)
                    raise FabricTimeout(
                        [sub.keys[i][:12] for i in range(len(jobs))
                         if i not in settled])
                self.step()
                time.sleep(self.coord.poll_interval)

        outcomes = observe_outcomes(self.coord, sub.keys)
        return self.coord.collect(jobs, sub.keys, outcomes, machine)

    def __repr__(self) -> str:
        role = f"leader@{self.coord.epoch}" if self.is_leader \
            else "standby"
        return f"HACoordinator({self.coordinator_id!r}, {role})"
