"""Campaign coordinator: decompose, dispatch, reclaim, settle.

The coordinator is the fleet-side counterpart of the in-process pool.
It turns a batch of :class:`~repro.exec.jobs.JobSpec`\\ s into leasable
:class:`~repro.fabric.units.WorkUnit` envelopes (deduplicating against
the shared :class:`~repro.exec.store.ResultStore` first — a key the
fleet already computed is settled immediately, with no unit at all),
publishes them in longest-processing-time-first rank order using the
shared :class:`~repro.exec.costmodel.CostModel`, and then watches the
lease ledger: completed units settle into the campaign manifest (the
duplicate-completion guard is keyed by unit id), silent leases are
reclaimed and — unless their result already landed in the store, the
zombie-finished-anyway case — re-enqueued under a *fresh* unit id.

The end state is the same :class:`~repro.harness.suite.SuiteResult`
the serial path produces: results in spec order pulled from the
content-addressed store, failures as structured
:class:`~repro.exec.campaign.WorkloadFailure` records.  The simulator
is seeded-deterministic and the store content-addressed, so a campaign
that survived any number of worker-host deaths is bit-identical to a
single-host serial run — the fabric chaos test asserts exactly that.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.exec.backend import StoreBackend, backend_for
from repro.exec.campaign import (TRANSIENT, CampaignInterrupted,
                                 CampaignManifest, WorkloadFailure)
from repro.exec.costmodel import CostModel, cost_key, lpt_order
from repro.exec.jobs import JobSpec, code_fingerprint
from repro.exec.resilience import RetryPolicy, retry_call
from repro.exec.store import ResultStore
from repro.fabric.lease import (Election, LeaseLedger, _ChangeTracker,
                                _read_json, default_coordinator_id)
from repro.fabric.units import WorkUnit, make_unit_id

#: fabric-root subdirectory holding the shared result store (+ costs.json)
STORE_DIR = "store"
#: fabric-root subdirectory holding the shared trace store
TRACES_DIR = "traces"
#: fabric-root subdirectory persisting submissions (for HA adoption)
SUBMISSIONS_DIR = "submissions"
#: default campaign journal filename under the fabric root
MANIFEST_NAME = "campaign.jsonl"

#: default seconds of heartbeat silence before a lease is reclaimed
DEFAULT_LEASE_TTL = 10.0
#: default re-enqueue budget per key before the unit settles as failed
DEFAULT_MAX_REQUEUES = 5

#: on-disk submission record schema
SUBMISSION_SCHEMA = 1

#: unit ids look like ``u00042-<key12>`` — the seq recovers from here
_UNIT_SEQ_RE = re.compile(r"^u(\d+)-")


def submission_id(keys: list[str]) -> str:
    """Content-derived submission id (same batch -> same id)."""
    digest = hashlib.sha256(
        "\n".join(sorted(keys)).encode()).hexdigest()
    return f"s{digest[:16]}"


class FabricTimeout(RuntimeError):
    """A campaign deadline passed with units still unsettled."""

    def __init__(self, pending: list[str]):
        super().__init__(
            f"fabric campaign timed out with {len(pending)} unsettled "
            f"unit(s): {', '.join(sorted(pending)[:5])}"
            + ("..." if len(pending) > 5 else ""))
        self.pending = list(pending)


def fabric_backend(root: str | Path | StoreBackend,
                   *, shared: bool = False) -> StoreBackend:
    """The backend for a fabric root (``shared`` = NFS-safe discipline)."""
    if isinstance(root, StoreBackend):
        return root
    return backend_for(f"{'shared' if shared else 'local'}:{root}")


@dataclass
class _Pending:
    """Coordinator-side state of one not-yet-settled unit."""

    index: int
    unit: WorkUnit
    requeues: int = 0


@dataclass
class Submission:
    """One batch of jobs handed to the fleet.

    ``outcomes[i]`` settles to a ``("done", key)`` /
    ``("failed", WorkloadFailure)`` pair as units complete; indices
    settled straight from the store never had a unit.
    """

    jobs: list[JobSpec]
    keys: list[str]
    #: unit id -> pending state for every in-flight unit
    pending: dict[str, _Pending] = field(default_factory=dict)
    outcomes: dict[int, tuple[str, object]] = field(default_factory=dict)
    #: persisted-submission id (None = never persisted, pre-HA batches)
    sid: str | None = None

    @property
    def done(self) -> bool:
        return len(self.outcomes) == len(self.jobs)

    @property
    def dedup_hits(self) -> int:
        """Jobs settled from the store without ever becoming units."""
        return len(self.jobs) - self._unit_count

    _unit_count: int = 0


class Coordinator:
    """Fleet-side scheduler over a shared fabric directory."""

    def __init__(self, root: str | Path | StoreBackend, *,
                 shared: bool = False,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = 0.05,
                 max_requeues: int = DEFAULT_MAX_REQUEUES,
                 coordinator_id: str | None = None):
        backend = fabric_backend(root, shared=shared)
        self.backend = backend
        self.root = backend.root
        self.ledger = LeaseLedger(backend)
        self.ledger.ensure_layout()
        store_backend = fabric_backend(self.root / STORE_DIR,
                                       shared=shared)
        self.store = ResultStore(backend=store_backend)
        self.costs = CostModel.for_store(self.store)
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.max_requeues = max_requeues
        self.coordinator_id = coordinator_id or default_coordinator_id()
        self.election = Election(self.ledger)
        #: the epoch we coordinate under; ``None`` disables fencing
        #: (single-coordinator mode — the pre-HA behaviour)
        self.epoch: int | None = None
        self._orphan_tracker = _ChangeTracker()
        self._seq = 0

    def _check_fence(self) -> None:
        """Refuse to mutate the ledger if we have been deposed."""
        if self.epoch is not None:
            self.election.check(self.epoch)

    # -- submission ------------------------------------------------------

    def _next_unit(self, job: JobSpec, key: str, rank: int,
                   estimate: float | None) -> WorkUnit:
        self._seq += 1
        return WorkUnit(
            unit_id=make_unit_id(self._seq, key),
            name=job.name, key=key, cost_key=cost_key(job), rank=rank,
            job=job, span=obs.current_ids(), estimate=estimate,
            epoch=self.epoch)

    # -- submission persistence (what a standby adopts) -----------------

    def submission_path(self, sid: str) -> Path:
        return self.root / SUBMISSIONS_DIR / f"{sid}.json"

    def _persist_submission(self, sub: Submission,
                            fingerprint: str) -> None:
        """Durably record the batch so a standby can adopt it.

        Written *before* any unit is enqueued: a coordinator that dies
        mid-submit leaves either no record (nothing to adopt) or a
        record plus a prefix of its units — and adoption re-enqueues
        whatever is missing.  Content-derived ids make the write
        idempotent across leaders.
        """
        dst = self.submission_path(sub.sid)
        if dst.exists():
            return
        payload = {
            "schema": SUBMISSION_SCHEMA, "sid": sub.sid,
            "fingerprint": fingerprint, "total": len(sub.jobs),
            "names": [job.name for job in sub.jobs],
            "keys": list(sub.keys),
            "jobs_pkl": base64.b64encode(
                pickle.dumps(sub.jobs,
                             protocol=pickle.HIGHEST_PROTOCOL)).decode(),
            "epoch": self.epoch, "ts": time.time(),
        }
        self.ledger._publish_json(payload, dst)

    def open_submissions(self) -> list[str]:
        """Persisted submissions not yet marked settled."""
        try:
            names = sorted(
                p.name for p in (self.root / SUBMISSIONS_DIR).iterdir())
        except FileNotFoundError:
            return []
        done = {n[:-len(".done")] for n in names if n.endswith(".done")}
        return [n[:-len(".json")] for n in names
                if n.endswith(".json") and not n.startswith(".")
                and n[:-len(".json")] not in done]

    def mark_settled(self, sid: str) -> None:
        """Record that every job of ``sid`` has a terminal outcome."""
        self.ledger._publish_json(
            {"sid": sid, "ts": time.time()},
            self.root / SUBMISSIONS_DIR / f"{sid}.done")

    def is_settled(self, sid: str) -> bool:
        return (self.root / SUBMISSIONS_DIR / f"{sid}.done").exists()

    def submit(self, jobs: list[JobSpec],
               fingerprint: str | None = None) -> Submission:
        """Plan and enqueue a batch; store hits settle immediately.

        Units are ranked longest-first from the shared cost model
        (reloaded here, so observations reported by earlier fleet work
        reorder later batches) and their queue filenames embed the
        rank, making every worker's lexical directory scan the LPT
        dispatch order.
        """
        if fingerprint is None:
            fingerprint = code_fingerprint()
        keys = [job.cache_key(fingerprint) for job in jobs]
        sub = Submission(jobs=list(jobs), keys=keys,
                         sid=submission_id(keys))
        self._persist_submission(sub, fingerprint)

        self.costs._load()      # adopt the fleet's latest observations
        misses: list[int] = []
        for i, (job, key) in enumerate(zip(jobs, keys)):
            if self.store.get(key) is not None:
                sub.outcomes[i] = ("done", key)
                obs.add("fabric.store_dedup_hits")
            else:
                misses.append(i)

        estimates = [self.costs.estimate(jobs[i]) for i in misses]
        for rank, i in enumerate(lpt_order(misses, estimates)):
            unit = self._next_unit(jobs[i], keys[i], rank,
                                   self.costs.estimate(jobs[i]))
            retry_call(
                lambda u=unit: self.ledger.enqueue(
                    u, fence=self._check_fence),
                policy=RetryPolicy(retries=2, backoff=0.05,
                                   deadline=2.0))
            sub.pending[unit.unit_id] = _Pending(index=i, unit=unit)
        sub._unit_count = len(sub.pending)
        return sub

    def adopt(self, sid: str) -> Submission:
        """Reconstruct a predecessor's submission from the ledger.

        The freshly-elected leader's half of failover: the persisted
        record gives back the jobs/keys; store hits and done records
        settle what already finished; surviving queue entries and
        leases are matched back to their indices; anything left — a
        unit the dead leader never enqueued, or one lost to a torn
        write — is re-enqueued fresh.  Requeue budgets restart at zero
        (the ledger does not journal them; a failover granting a few
        extra retries is the safe direction).
        """
        rec = _read_json(self.submission_path(sid))
        if rec is None or rec.get("schema") != SUBMISSION_SCHEMA:
            raise FileNotFoundError(
                f"no adoptable submission record for {sid!r}")
        jobs = pickle.loads(base64.b64decode(rec["jobs_pkl"]))
        keys = list(rec["keys"])
        sub = Submission(jobs=jobs, keys=keys, sid=sid)

        done = self.ledger.done_records()
        self._recover_seq(done)
        failed_by_key: dict[str, dict] = {}
        for unit_id, drec in done.items():
            if drec.get("status") == "done":
                # verify before trusting: a torn result write can
                # leave a done record with no store entry behind
                key = drec.get("key")
                if key and self.store.get(key) is None:
                    self.ledger.done_path(unit_id).unlink(
                        missing_ok=True)
                    obs.add("fabric.done_without_result")
            elif drec.get("key"):
                failed_by_key[drec["key"]] = drec

        unsettled: dict[str, int] = {}      # key -> index
        for i, key in enumerate(keys):
            if self.store.get(key) is not None:
                sub.outcomes[i] = ("done", key)
            elif key in failed_by_key:
                failure = WorkloadFailure.from_json(
                    failed_by_key[key]["failure"])
                sub.outcomes[i] = ("failed", failure)
            else:
                unsettled[key] = i

        # match surviving units (queued and/or leased) to their indices
        for unit_id, path in self.ledger.queue_entries():
            try:
                unit = WorkUnit.load(path)
            except Exception:
                continue            # torn envelope: orphan path requeues
            if unit.key in unsettled:
                sub.pending[unit.unit_id] = _Pending(
                    index=unsettled.pop(unit.key), unit=unit)
        for unit_id in self.ledger.active_leases():
            if unit_id in sub.pending or unit_id in done:
                continue
            for key, i in list(unsettled.items()):
                if unit_id.endswith(key[:12]):
                    unsettled.pop(key)
                    sub.pending[unit_id] = _Pending(
                        index=i, unit=WorkUnit(
                            unit_id=unit_id, name=jobs[i].name, key=key,
                            cost_key=cost_key(jobs[i]), rank=i,
                            job=jobs[i], epoch=self.epoch))
                    break

        # whatever is left never made it into (or fell out of) the
        # queue — enqueue it fresh under our epoch
        for key, i in sorted(unsettled.items(), key=lambda kv: kv[1]):
            unit = self._next_unit(jobs[i], key, rank=i,
                                   estimate=self.costs.estimate(jobs[i]))
            self.ledger.enqueue(unit, fence=self._check_fence)
            sub.pending[unit.unit_id] = _Pending(index=i, unit=unit)
        sub._unit_count = len(jobs) - sum(
            1 for s, _ in sub.outcomes.values() if s == "done")
        obs.add("fabric.submissions_adopted")
        return sub

    def _recover_seq(self, done: dict[str, dict]) -> None:
        """Continue the unit-id sequence past every id already on disk."""
        seen = list(done)
        seen += [uid for uid, _ in self.ledger.queue_entries()]
        seen += list(self.ledger.active_leases())
        for uid in seen:
            m = _UNIT_SEQ_RE.match(uid)
            if m:
                self._seq = max(self._seq, int(m.group(1)))

    # -- settlement ------------------------------------------------------

    def _settle(self, sub: Submission, unit_id: str, status: str,
                payload, manifest: CampaignManifest | None) -> None:
        pend = sub.pending.pop(unit_id)
        self.ledger.remove_queued(unit_id)
        self._orphan_tracker.forget(unit_id)
        sub.outcomes[pend.index] = (status, payload)
        if manifest is not None:
            failure = payload if status == "failed" else None
            manifest.record(sub.keys[pend.index], pend.unit.name,
                            status, failure=failure, unit=unit_id)

    def _requeue(self, sub: Submission, unit_id: str,
                 manifest: CampaignManifest | None) -> None:
        """Re-enqueue a reclaimed unit under a fresh unit id."""
        pend = sub.pending.pop(unit_id)
        self._orphan_tracker.forget(unit_id)
        job, key = sub.jobs[pend.index], sub.keys[pend.index]
        if pend.requeues + 1 > self.max_requeues:
            failure = WorkloadFailure(
                name=job.name, error_type="LeaseExpired",
                message=(f"lease expired {self.max_requeues + 1} times "
                         f"without a completion"),
                classification=TRANSIENT, attempts=pend.requeues + 1,
                key=key)
            sub.outcomes[pend.index] = ("failed", failure)
            if manifest is not None:
                manifest.record(key, job.name, "failed",
                                failure=failure, unit=unit_id)
            # a done record makes the terminal failure visible to
            # standby coordinators (first writer wins; best effort —
            # the outcome above is already authoritative here)
            try:
                self.ledger.complete(unit_id, {
                    "unit": unit_id, "status": "failed", "key": key,
                    "name": job.name, "failure": failure.to_json(),
                    "coordinator": self.coordinator_id,
                    "epoch": self.epoch})
            except OSError:
                obs.add("fabric.coordinator_io_errors")
            return
        unit = self._next_unit(job, key, pend.unit.rank,
                               pend.unit.estimate)
        retry_call(
            lambda: self.ledger.enqueue(unit, fence=self._check_fence),
            policy=RetryPolicy(retries=2, backoff=0.05, deadline=2.0))
        sub.pending[unit.unit_id] = _Pending(
            index=pend.index, unit=unit, requeues=pend.requeues + 1)
        if manifest is not None:
            manifest.record_event("reclaimed", unit=unit_id,
                                  reissued_as=unit.unit_id, key=key)

    def _publish_fleet_gauges(self) -> None:
        leases = self.ledger.active_leases()
        workers = self.ledger.workers()
        obs.gauge_set("fabric.queue_depth",
                      float(len(self.ledger.queue_entries())))
        obs.gauge_set("fabric.leases_active", float(len(leases)))
        alive = {w: rec for w, rec in workers.items()
                 if rec["age_s"] <= self.lease_ttl}
        obs.gauge_set("fabric.workers_alive", float(len(alive)))
        per_worker: dict[str, int] = {w: 0 for w in workers}
        for rec in leases.values():
            per_worker[rec.get("worker", "?")] = \
                per_worker.get(rec.get("worker", "?"), 0) + 1
        for worker, rec in workers.items():
            obs.gauge_set(f"fabric.worker.{worker}.leases",
                          float(per_worker.get(worker, 0)))
            obs.gauge_set(f"fabric.worker.{worker}.heartbeat_age_s",
                          float(rec["age_s"]))

    def poll(self, sub: Submission,
             manifest: CampaignManifest | None = None) -> int:
        """One coordination step; returns how many units settled.

        Order matters: completions are read *before* reclaim, so a
        worker that finished and exited cleanly (its lease released,
        its heartbeat gone) is never mistaken for a death.  A reclaimed
        unit whose result already landed in the store — the worker
        published the result but died before (or just after) its done
        record — settles as done instead of re-running.

        Fenced: raises :class:`~repro.fabric.lease.LeadershipLost`
        when a higher-epoch coordinator exists (zombie ex-leader).
        """
        self._check_fence()
        settled_before = len(sub.outcomes)
        done = self.ledger.done_records()
        for unit_id in list(sub.pending):
            rec = done.get(unit_id)
            if rec is None:
                continue
            if rec.get("status") == "done":
                key = sub.keys[sub.pending[unit_id].index]
                if self.store.get(key) is None:
                    # "done" with no result behind it: a torn write
                    # that reported success.  Drop the lying record
                    # and re-run the unit.
                    self.ledger.done_path(unit_id).unlink(
                        missing_ok=True)
                    obs.add("fabric.done_without_result")
                    self.ledger.remove_queued(unit_id)
                    self._requeue(sub, unit_id, manifest)
                    continue
                self._settle(sub, unit_id, "done", rec.get("key"),
                             manifest)
            else:
                failure = WorkloadFailure.from_json(rec["failure"])
                self._settle(sub, unit_id, "failed", failure, manifest)

        for unit_id in self.ledger.reclaim_expired(self.lease_ttl):
            if unit_id not in sub.pending:
                continue
            pend = sub.pending[unit_id]
            if self.store.get(sub.keys[pend.index]) is not None:
                # The zombie got the result out before dying: keep it.
                self._settle(sub, unit_id, "done",
                             sub.keys[pend.index], manifest)
                obs.add("fabric.reclaims_settled_from_store")
            else:
                self.ledger.remove_queued(unit_id)
                self._requeue(sub, unit_id, manifest)

        self._requeue_orphans(sub, manifest)
        self._publish_fleet_gauges()
        return len(sub.outcomes) - settled_before

    def _requeue_orphans(self, sub: Submission,
                         manifest: CampaignManifest | None) -> None:
        """Recover units that are neither queued, leased, nor done.

        A unit can fall out of every ledger set without a trace: its
        queue envelope was torn by an injected write fault (workers
        skip it forever), or a dying leader removed the entry without
        re-publishing.  Such orphans are aged on our monotonic clock —
        transient unreadability under fault injection heals itself —
        and re-enqueued once they stay unaccountable past the lease
        ttl.
        """
        leases = self.ledger.active_leases()
        queued = dict(self.ledger.queue_entries())
        for unit_id in list(sub.pending):
            if unit_id in leases:
                self._orphan_tracker.forget(unit_id)
                continue
            path = queued.get(unit_id)
            if path is not None:
                try:
                    WorkUnit.load(path)
                except Exception:
                    pass            # torn envelope: still an orphan
                else:
                    self._orphan_tracker.forget(unit_id)
                    continue
            done_path = self.ledger.done_path(unit_id)
            if done_path.exists() \
                    and _read_json(done_path) is not None:
                continue            # settles on the next poll
            if self._orphan_tracker.observe(unit_id, "orphan") \
                    > self.lease_ttl:
                pend = sub.pending[unit_id]
                # a torn done record blocks any fresh completion
                # (first-writer-wins) — drop it before deciding
                done_path.unlink(missing_ok=True)
                if self.store.get(sub.keys[pend.index]) is not None:
                    self._settle(sub, unit_id, "done",
                                 sub.keys[pend.index], manifest)
                    obs.add("fabric.reclaims_settled_from_store")
                else:
                    self.ledger.remove_queued(unit_id)
                    self._requeue(sub, unit_id, manifest)
                    obs.add("fabric.orphans_requeued")

    def wait(self, sub: Submission,
             manifest: CampaignManifest | None = None,
             timeout: float | None = None,
             should_stop=None) -> Submission:
        """Poll until every job settles (or timeout / stop request)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not sub.done:
            if should_stop is not None and should_stop():
                self.ledger.request_stop()
                raise CampaignInterrupted(
                    manifest.path if manifest is not None else None,
                    completed=sum(1 for s, _ in sub.outcomes.values()
                                  if s == "done"),
                    failed=sum(1 for s, _ in sub.outcomes.values()
                               if s == "failed"),
                    remaining=len(sub.pending))
            if self.poll(sub, manifest) == 0:
                if deadline is not None and time.monotonic() > deadline:
                    raise FabricTimeout(list(sub.pending))
                time.sleep(self.poll_interval)
        return sub

    # -- the campaign entry point ---------------------------------------

    def run_campaign(self, specs, machine, fidelity=None, seed: int = 0,
                     manifest: CampaignManifest | str | Path | None = None,
                     timeout: float | None = None, should_stop=None,
                     **run_kwargs):
        """Characterize ``specs`` on ``machine`` across the fleet.

        Returns the same :class:`~repro.harness.suite.SuiteResult` a
        serial ``characterize_suite`` call produces — results in spec
        order out of the shared store, failures as structured records —
        regardless of how many workers served it or died serving it.
        """
        from repro.harness.runner import Fidelity
        from repro.harness.suite import SuiteResult

        fidelity = fidelity or Fidelity.default()
        jobs = [JobSpec(spec=spec, machine=machine, fidelity=fidelity,
                        seed=seed, run_kwargs=run_kwargs)
                for spec in specs]
        if manifest is None:
            manifest = CampaignManifest(self.root / MANIFEST_NAME)
        elif not isinstance(manifest, CampaignManifest):
            manifest = CampaignManifest(manifest)
        fingerprint = code_fingerprint()
        manifest.begin(fingerprint, total=len(jobs))

        with obs.span("fabric.campaign", machine=machine.name,
                      workloads=len(jobs)):
            sub = self.submit(jobs, fingerprint)
            for i, (status, payload) in sub.outcomes.items():
                # store-dedup hits settle before any unit exists
                if manifest is not None and status == "done":
                    manifest.record(sub.keys[i], jobs[i].name, "done")
            self.wait(sub, manifest, timeout=timeout,
                      should_stop=should_stop)

        if sub.sid is not None:
            self.mark_settled(sub.sid)
        return self.collect(jobs, sub.keys, sub.outcomes, machine)

    def collect(self, jobs, keys, outcomes, machine):
        """Assemble the final SuiteResult from settled outcomes.

        Store reads ride out transient faults with a short bounded
        retry — a campaign that survived a fault storm should not die
        assembling its answer to one last injected EIO.
        """
        from repro.harness.suite import SuiteResult

        out = SuiteResult(machine=machine)
        for i, (job, key) in enumerate(zip(jobs, keys)):
            status, payload = outcomes[i]
            if status == "failed":
                out.failures.append(payload)
                continue
            result = None
            for delay in (0.0, 0.1, 0.5, 1.0):
                if delay:
                    time.sleep(delay)
                result = self.store.get(key)
                if result is not None:
                    break
            if result is None:
                raise RuntimeError(
                    f"unit for {job.name} reported done but key "
                    f"{key[:12]} is missing from the store")
            out.results.append(result)
        return out

    def store_reachable(self) -> bool:
        """Can the shared store serve a read right now?

        Probes a key that cannot exist: a clean miss means the mount
        answers; any other ``OSError`` means it does not.  Feeds
        ``/healthz``.
        """
        probe = self.store.path_for("0" * 64)
        try:
            self.store.backend.read_bytes(probe)
        except FileNotFoundError:
            return True
        except OSError:
            return False
        return True

    def __repr__(self) -> str:
        return f"Coordinator({self.backend.describe()!r})"
