"""``repro-fabric`` — the fabric's operational entry points.

One binary, five subcommands, mirroring the roles in a deployment::

    repro-fabric worker DIR     # one per host: pull leases, run jobs
    repro-fabric serve DIR      # the HTTP front door (one instance)
    repro-fabric run DIR ...    # a one-shot campaign as coordinator
    repro-fabric standby DIR    # hot-standby coordinator (HA failover)
    repro-fabric status DIR     # fleet view of a fabric directory

``DIR`` is the fabric directory every role shares — a local path for
single-host multi-process use, a shared mount (pass ``--shared`` for
the NFS-safe publish/read discipline) for a real fleet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import obs


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("root", metavar="DIR",
                        help="fabric directory shared by the fleet")
    parser.add_argument("--shared", action="store_true",
                        help="use the shared-mount (NFS-safe) store "
                             "discipline: fsync directories on publish, "
                             "retry stale reads")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="enable repro.obs recording into DIR")


def _configure_obs(args) -> None:
    if args.obs_dir:
        obs.configure(args.obs_dir)
    elif args.command == "serve":
        # The service exposes /metrics; always collect in-memory
        # metrics there, even with no recording directory.
        if not obs.configure_from_env():
            obs.configure(None, export_env=False)
    else:
        obs.configure_from_env()


def _cmd_worker(args) -> int:
    from repro.exec.campaign import graceful_shutdown
    from repro.fabric.worker import WorkerAgent

    # Share one trace store across the fleet so every workload's op
    # stream is generated once, fabric-wide.
    os.environ.setdefault("REPRO_TRACE_DIR",
                          str(Path(args.root) / "traces"))
    agent = WorkerAgent(args.root, shared=args.shared,
                        worker_id=args.worker_id,
                        heartbeat_interval=args.heartbeat,
                        job_timeout=args.job_timeout)
    print(f"# worker {agent.worker_id} serving {agent.root}",
          file=sys.stderr)
    with graceful_shutdown() as stop:
        served = agent.run(max_units=args.max_units,
                           idle_exit=args.idle_exit,
                           should_stop=stop.is_set)
    print(f"# worker {agent.worker_id} exit: {served} unit(s) run",
          file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from repro.fabric.coordinator import Coordinator
    from repro.fabric.service import CharacterizationService, serve

    coordinator = Coordinator(args.root, shared=args.shared,
                              lease_ttl=args.lease_ttl)
    service = CharacterizationService(coordinator)
    serve(service, host=args.host, port=args.port)
    return 0


def _cmd_run(args) -> int:
    from repro.exec.campaign import CampaignInterrupted, graceful_shutdown
    from repro.fabric.coordinator import Coordinator
    from repro.fabric.ha import HACoordinator
    from repro.fabric.service import parse_request

    body = {"machine": args.machine, "seed": args.seed,
            "instructions": args.instructions, "warmup": args.warmup}
    if args.suite:
        body["suite"] = args.suite
    else:
        body["benchmarks"] = args.benchmark
    specs, machine, fidelity, seed = parse_request(body)
    if args.ha:
        coordinator = HACoordinator(
            args.root, shared=args.shared, lease_ttl=args.lease_ttl,
            coordinator_id=args.coordinator_id,
            coordinator_ttl=args.coordinator_ttl)
    else:
        coordinator = Coordinator(args.root, shared=args.shared,
                                  lease_ttl=args.lease_ttl)
    try:
        with graceful_shutdown() as stop:
            suite = coordinator.run_campaign(
                specs, machine, fidelity, seed=seed,
                timeout=args.timeout, should_stop=stop.is_set)
    except CampaignInterrupted as err:
        print(f"# {err}", file=sys.stderr)
        return 130
    root = coordinator.coord.root if args.ha else coordinator.root
    print(f"# {len(suite.results)} benchmarks on {machine.name} "
          f"via {root}")
    for result in suite.results:
        print(f"{result.spec.name}\t{result.seconds:.6f}\t"
              f"{result.ipc:.3f}")
    if suite.failures:
        print(f"# {len(suite.failures)} workload(s) failed",
              file=sys.stderr)
        for failure in suite.failures:
            print(f"#   {failure.name}: {failure.error_type}: "
                  f"{failure.message}", file=sys.stderr)
        return 1
    return 0


def _cmd_standby(args) -> int:
    from repro.exec.campaign import graceful_shutdown
    from repro.fabric.ha import HACoordinator

    ha = HACoordinator(args.root, shared=args.shared,
                       lease_ttl=args.lease_ttl,
                       coordinator_id=args.coordinator_id,
                       coordinator_ttl=args.coordinator_ttl)
    print(f"# standby coordinator {ha.coordinator_id} watching "
          f"{ha.coord.root}", file=sys.stderr)
    with graceful_shutdown() as stop:
        ha.run(should_stop=stop.is_set, idle_exit=args.idle_exit)
    role = f"leader@{ha.coord.epoch}" if ha.is_leader else "standby"
    print(f"# coordinator {ha.coordinator_id} exit ({role})",
          file=sys.stderr)
    return 0


def _cmd_status(args) -> int:
    from repro.fabric.coordinator import Coordinator
    from repro.fabric.service import CharacterizationService

    coordinator = Coordinator(args.root, shared=args.shared)
    service = CharacterizationService(coordinator)
    health = service.health_json()
    leader = health.get("leader")
    if leader is not None:
        print(f"# leader: {leader['coordinator']} "
              f"(epoch {leader['epoch']})", file=sys.stderr)
    for cid, rec in sorted(health.get("coordinators", {}).items()):
        print(f"#   coordinator {cid}: epoch={rec.get('epoch')} "
              f"heartbeat_age={rec['age_s']:.1f}s"
              + (" [resigned]" if rec.get("resigned") else ""),
              file=sys.stderr)
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fabric",
        description="Distributed campaign fabric over a shared directory")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("worker", help="run one worker agent")
    _add_common(p)
    p.add_argument("--worker-id", default=None,
                   help="stable agent id (default: <host>-<pid>)")
    p.add_argument("--heartbeat", type=float, default=1.0,
                   help="seconds between lease renewals")
    p.add_argument("--idle-exit", type=float, default=None,
                   help="exit after this many seconds with an empty "
                        "queue (default: serve forever)")
    p.add_argument("--max-units", type=int, default=None,
                   help="exit after running this many units")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("serve", help="run the HTTP service front-end")
    _add_common(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8137)
    p.add_argument("--lease-ttl", type=float, default=10.0,
                   help="seconds of heartbeat silence before reclaim")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("run", help="run one campaign across the fleet")
    _add_common(p)
    p.add_argument("benchmark", nargs="*",
                   help="benchmark names (or use --suite)")
    p.add_argument("--suite", choices=["dotnet", "aspnet", "speccpu"],
                   default=None)
    p.add_argument("--machine", default="i9")
    p.add_argument("--instructions", type=int, default=150_000)
    p.add_argument("--warmup", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=None,
                   help="overall campaign deadline in seconds")
    p.add_argument("--lease-ttl", type=float, default=10.0)
    p.add_argument("--ha", action="store_true",
                   help="coordinate under leader election so a "
                        "standby can take over if this process dies")
    p.add_argument("--coordinator-id", default=None,
                   help="stable coordinator id (default: c-<host>-<pid>)")
    p.add_argument("--coordinator-ttl", type=float, default=5.0,
                   help="leader heartbeat silence before takeover")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("standby",
                       help="run a hot-standby coordinator that takes "
                            "over open campaigns if the leader dies")
    _add_common(p)
    p.add_argument("--coordinator-id", default=None,
                   help="stable coordinator id (default: c-<host>-<pid>)")
    p.add_argument("--coordinator-ttl", type=float, default=5.0,
                   help="leader heartbeat silence before takeover")
    p.add_argument("--lease-ttl", type=float, default=10.0,
                   help="seconds of heartbeat silence before reclaim")
    p.add_argument("--idle-exit", type=float, default=None,
                   help="exit after this many seconds with no open "
                        "submissions (default: stand by forever)")
    p.set_defaults(func=_cmd_standby)

    p = sub.add_parser("status", help="print the fleet view as JSON")
    _add_common(p)
    p.set_defaults(func=_cmd_status)

    args = parser.parse_args(argv)
    if args.command == "run" and not args.suite and not args.benchmark:
        parser.error("run needs benchmark names or --suite")
    _configure_obs(args)
    try:
        return args.func(args)
    finally:
        obs.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
