"""``repro.fabric`` — distributed campaign fabric + service front-end.

PR 3 made one campaign survive crashed *processes*; this package makes
it survive crashed *hosts*, and puts an HTTP front door on the result.
A fabric is nothing but a directory (local, or a shared mount) with a
small protocol on top:

* :mod:`repro.fabric.units` — :class:`WorkUnit`, the leasable quantum:
  one ``JobSpec`` plus its cache key, cost key, LPT rank and the
  submitting span context, published as a JSON envelope whose queue
  filename embeds the rank (a worker's lexical scan *is* the
  coordinator's dispatch order);
* :mod:`repro.fabric.lease` — :class:`LeaseLedger`, the filesystem
  lease protocol: ``O_EXCL`` claims, atomic-replace heartbeats,
  first-writer-wins completion records, and skew-immune expiry (the
  coordinator ages heartbeat *content* on its own monotonic clock);
* :mod:`repro.fabric.coordinator` — :class:`Coordinator`, which
  decomposes a campaign into units (deduplicating against the shared
  :class:`~repro.exec.store.ResultStore` first), reclaims silent
  leases, settles outcomes through the
  :class:`~repro.exec.campaign.CampaignManifest` duplicate-completion
  guard, and reassembles the exact ``SuiteResult`` a serial run
  produces — bit-identical no matter how many workers died;
* :mod:`repro.fabric.worker` — :class:`WorkerAgent`
  (``repro-fabric worker``), the per-host loop: claim, run through the
  existing pool/store/warm/cost-model path, report back;
* :mod:`repro.fabric.service` — ``repro-fabric serve``, a
  stdlib-asyncio HTTP front-end: characterization requests dedup
  against the store (hit → immediate, miss → enqueue), progress
  streams as NDJSON, ``/metrics`` exposes the fleet-health gauges in
  Prometheus text format, and span context crosses the HTTP boundary
  via ``X-Repro-Span``;
* :mod:`repro.fabric.ha` — :class:`HACoordinator`
  (``repro-fabric standby``): epoch-numbered leader election over the
  same directory, fenced ledger writes that reject a zombie
  ex-leader, and submission adoption so a standby finishes whatever
  campaign the dead leader left open.
"""

from repro.fabric.coordinator import (Coordinator, FabricTimeout,
                                      Submission, fabric_backend,
                                      submission_id)
from repro.fabric.ha import HACoordinator, observe_outcomes
from repro.fabric.lease import (Election, LeadershipLost, LeaseLedger,
                                default_coordinator_id)
from repro.fabric.service import (CharacterizationService, FabricServer,
                                  ServerThread, parse_request)
from repro.fabric.units import WorkUnit, make_unit_id, unit_id_of
from repro.fabric.worker import (ResultSpool, WorkerAgent,
                                 default_worker_id)

__all__ = [
    "WorkUnit", "make_unit_id", "unit_id_of",
    "LeaseLedger", "Election", "LeadershipLost",
    "default_coordinator_id",
    "Coordinator", "FabricTimeout", "Submission", "fabric_backend",
    "submission_id",
    "HACoordinator", "observe_outcomes",
    "WorkerAgent", "ResultSpool", "default_worker_id",
    "CharacterizationService", "FabricServer", "ServerThread",
    "parse_request",
]
