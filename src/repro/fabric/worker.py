"""Worker agent: pull leases, run jobs, report outcomes.

One agent process serves one host.  Its loop is deliberately dumb —
all cleverness lives in layers that already exist:

1. scan the queue in filename order (which *is* the coordinator's LPT
   order), skip units that are leased or done, and try to claim the
   first claimable one (``O_EXCL`` — losing the race costs a directory
   scan, nothing more);
2. run the claimed unit through :func:`repro.exec.pool.run_jobs` —
   the same path a local campaign takes, so the shared result store,
   trace store, warm caches, retry/backoff and cost-model observation
   all apply unchanged (and the cost model's locked read-merge-write
   ``save`` is how this worker reports its runtime observations back
   for the coordinator's next LPT ordering);
3. publish a ``done/`` record (first writer wins) and release the
   lease.

A background thread renews the unit lease and the agent's own
heartbeat file while a job runs, so a long simulation is never
mistaken for a dead host.  If a renewal discovers the lease was
reclaimed (the agent was presumed dead), the run still completes —
execution is deterministic and the store content-addressed, so the
late completion either wins the ``done/`` race or is dropped by it,
and the campaign manifest's unit-keyed guard settles the unit exactly
once either way.

Worker spans parent under the coordinator's submitting span via the
``span`` tuple carried in the unit envelope, so one cross-host trace
shows request → campaign → unit → pool job.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

from repro import obs
from repro.obs import timeseries
from repro.exec.backend import StoreBackend
from repro.exec.campaign import WorkloadFailure
from repro.exec.costmodel import CostModel
from repro.exec.pool import JobFailure, run_jobs
from repro.exec.resilience import (CircuitBreaker, RetryPolicy,
                                   retry_call)
from repro.exec.store import ResultStore
from repro.fabric.coordinator import STORE_DIR, fabric_backend
from repro.fabric.lease import LeaseLedger
from repro.fabric.units import WorkUnit
from repro.obs.spans import SpanContext

#: default seconds between lease/worker heartbeat renewals
DEFAULT_HEARTBEAT = 1.0

#: retry discipline for ledger/store writes before degrading
_WRITE_POLICY = RetryPolicy(retries=2, backoff=0.05, deadline=2.0)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeater(threading.Thread):
    """Renews the unit lease + agent heartbeat while a job runs."""

    def __init__(self, ledger: LeaseLedger, worker: str, unit_id: str,
                 interval: float, seq_start: int):
        super().__init__(daemon=True)
        self.ledger = ledger
        self.worker = worker
        self.unit_id = unit_id
        self.interval = interval
        self.seq = seq_start
        self.lost = threading.Event()
        # NB: not ``_stop`` — that would shadow threading.Thread._stop
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.seq += 1
            try:
                self.ledger.write_worker_heartbeat(
                    self.worker, [self.unit_id], self.seq)
                if not self.ledger.heartbeat(self.unit_id, self.worker):
                    self.lost.set()     # reclaimed; finish anyway
            except OSError:
                # A transient write fault must not kill this thread —
                # a dead heartbeater looks exactly like a dead host
                # and gets a healthy worker's lease reclaimed.  Count
                # it and try again next tick.
                obs.add("fabric.heartbeat_errors")

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=self.interval * 4 + 1.0)
        return self.seq


class ResultSpool:
    """Local holding area for work the shared store refused to take.

    A worker that finishes a unit during a store outage has the result
    in memory and nowhere durable to put it.  Losing it (and re-running
    a multi-minute simulation) is the failure mode this prevents: the
    result pickles to local disk, the matching done record queues
    beside it, and :meth:`flush` replays both — results strictly
    before records, so a done record never points at a store miss —
    once the backend answers again.  Everything here is idempotent:
    the store is content-addressed and done records first-writer-wins,
    so replaying a spool twice is harmless.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _results_dir(self) -> Path:
        return self.root / "results"

    def _records_dir(self) -> Path:
        return self.root / "records"

    def put_result(self, key: str, value) -> None:
        d = self._results_dir()
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / f".{key}.tmp"
        tmp.write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, d / f"{key}.pkl")

    def put_record(self, unit_id: str, record: dict) -> None:
        d = self._records_dir()
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / f".{unit_id}.tmp"
        tmp.write_text(json.dumps(record, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, d / f"{unit_id}.json")

    def pending(self) -> int:
        n = 0
        for d in (self._results_dir(), self._records_dir()):
            try:
                n += sum(1 for p in d.iterdir()
                         if not p.name.startswith("."))
            except FileNotFoundError:
                pass
        return n

    def flush(self, store: ResultStore, ledger: LeaseLedger) -> int:
        """Replay the spool into the shared store/ledger.

        Raises ``OSError`` if the backend is still down (whatever was
        replayed so far stays replayed — per-file deletion keeps the
        spool consistent under partial failure).
        """
        flushed = 0
        for path in sorted(self._results_dir().glob("*.pkl")):
            store.put(path.stem, pickle.loads(path.read_bytes()))
            path.unlink(missing_ok=True)
            flushed += 1
        for path in sorted(self._records_dir().glob("*.json")):
            record = json.loads(path.read_text(encoding="utf-8"))
            unit_id = record["unit"]
            ledger.complete(unit_id, record)    # dup -> False, benign
            ledger.remove_queued(unit_id)
            path.unlink(missing_ok=True)
            flushed += 1
        if flushed:
            obs.add("fabric.spool_reconciled", float(flushed))
        return flushed


class _DegradedStore:
    """Store proxy a worker runs jobs against: puts degrade, never die.

    ``put`` rides transient faults with bounded retries under a
    circuit breaker; when the store is genuinely down (retries
    exhausted or breaker open) the result lands in the local spool and
    the put *succeeds* from the job runner's point of view — degraded
    mode means the work is kept, not that the worker stalls in
    kernel-side NFS timeouts.  Reads pass straight through (the store
    already degrades reads to cache misses).
    """

    def __init__(self, store: ResultStore, breaker: CircuitBreaker,
                 spool: ResultSpool):
        self._store = store
        self._breaker = breaker
        self._spool = spool
        #: keys whose results only exist in the local spool so far
        self.spooled_keys: set[str] = set()

    def get(self, key: str, default=None):
        return self._store.get(key, default)

    def put(self, key: str, value):
        try:
            return retry_call(
                lambda: self._breaker.call(
                    lambda: self._store.put(key, value)),
                policy=_WRITE_POLICY)
        except OSError:
            self._spool.put_result(key, value)
            self.spooled_keys.add(key)
            obs.add("fabric.spooled_results")
            return None

    def __getattr__(self, name):
        return getattr(self._store, name)


class WorkerAgent:
    """One fabric worker process (one per host, typically)."""

    def __init__(self, root: str | Path | StoreBackend, *,
                 worker_id: str | None = None, shared: bool = False,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT,
                 poll_interval: float = 0.05,
                 max_retries: int = 3, retry_backoff: float = 0.1,
                 job_timeout: float | None = None,
                 spool_dir: str | Path | None = None):
        backend = fabric_backend(root, shared=shared)
        self.backend = backend
        self.root = backend.root
        self.worker_id = worker_id or default_worker_id()
        self.ledger = LeaseLedger(backend)
        self.ledger.ensure_layout()
        self.store = ResultStore(
            backend=fabric_backend(self.root / STORE_DIR, shared=shared))
        self.costs = CostModel.for_store(self.store)
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.job_timeout = job_timeout
        self.breaker = CircuitBreaker(threshold=5, cooldown=2.0)
        if spool_dir is None:
            spool_dir = (Path(tempfile.gettempdir())
                         / f"repro-spool-{self.worker_id}")
        self.spool = ResultSpool(spool_dir)
        self._degraded = _DegradedStore(self.store, self.breaker,
                                        self.spool)
        self._seq = 0
        self.units_run = 0
        # Fleet time-series: a local ring of samples republished whole
        # (capped, so the publication payload is bounded) through the
        # backend seam — works with or without obs enabled, and a
        # store outage only costs samples, never the worker.
        self._series = deque(maxlen=300)
        self._series_seq = 0
        self._series_last = 0.0
        self.series_interval = timeseries.series_interval()

    # -- claiming --------------------------------------------------------

    def claim_next(self) -> WorkUnit | None:
        """Claim the first claimable queued unit, in dispatch order."""
        done = self.ledger.done_records()
        leases = self.ledger.active_leases()
        for unit_id, path in self.ledger.queue_entries():
            if unit_id in done:
                # settled long ago; opportunistically tidy the queue
                path.unlink(missing_ok=True)
                continue
            if unit_id in leases:
                continue
            if not self.ledger.claim(unit_id, self.worker_id):
                continue            # lost the race to another worker
            try:
                return WorkUnit.load(path)
            except (OSError, ValueError):
                # torn/vanished envelope: drop the claim, move on
                self.ledger.release(unit_id, self.worker_id)
                continue
        return None

    # -- execution -------------------------------------------------------

    def run_unit(self, unit: WorkUnit) -> dict:
        """Execute one claimed unit; returns the outcome record."""
        parent = SpanContext(*unit.span) if unit.span else None
        beat = _Heartbeater(self.ledger, self.worker_id, unit.unit_id,
                            self.heartbeat_interval, self._seq)
        beat.start()
        started = time.monotonic()
        try:
            with obs.span("fabric.unit", parent=parent,
                          unit=unit.unit_id, workload=unit.name,
                          worker=self.worker_id):
                cached = self._degraded.get(unit.key) is not None
                outcome = run_jobs(
                    [unit.job], n_jobs=1, store=self._degraded,
                    catch=(Exception,), timeout=self.job_timeout,
                    max_retries=self.max_retries,
                    retry_backoff=self.retry_backoff,
                    cost_model=self.costs)[0]
        finally:
            self._seq = beat.stop()
        seconds = time.monotonic() - started
        record = {"unit": unit.unit_id, "name": unit.name,
                  "key": unit.key, "worker": self.worker_id,
                  "seconds": seconds, "cached": cached}
        if isinstance(outcome, JobFailure):
            failure = WorkloadFailure.from_job_failure(outcome,
                                                       key=unit.key)
            record["status"] = "failed"
            record["failure"] = failure.to_json()
        else:
            record["status"] = "done"
        if beat.lost.is_set():
            record["lease_lost"] = True
            obs.add("fabric.late_completions")
        return record

    def serve_one(self) -> bool:
        """Claim + run + report one unit; ``False`` if none claimable."""
        unit = self.claim_next()
        if unit is None:
            return False
        record = self.run_unit(unit)
        if unit.key in self._degraded.spooled_keys \
                and record.get("status") == "done":
            # The result only exists in the local spool: publishing
            # the done record now would be a lie the coordinator
            # requeues (done-without-result).  Spool the record beside
            # it; reconcile replays result-then-record on recovery.
            record["spooled"] = True
            self.spool.put_record(unit.unit_id, record)
            self.ledger.release(unit.unit_id, self.worker_id)
        else:
            try:
                retry_call(
                    lambda: self.ledger.complete(unit.unit_id, record),
                    policy=_WRITE_POLICY)
            except OSError:
                # store is fine but the ledger write is not — keep the
                # record locally and replay it later
                self.spool.put_record(unit.unit_id, record)
                obs.add("fabric.spooled_records")
                self.ledger.release(unit.unit_id, self.worker_id)
            else:
                self.ledger.release(unit.unit_id, self.worker_id)
                self.ledger.remove_queued(unit.unit_id)
        self.units_run += 1
        obs.add("fabric.worker_units_run")
        return True

    def _reconcile_spool(self) -> int:
        """Replay spooled results/records once the backend answers.

        The flush attempt doubles as the circuit breaker's half-open
        probe: success closes the circuit, failure re-opens it and we
        try again next loop.
        """
        if not self.spool.pending():
            return 0
        try:
            flushed = self.breaker.call(
                lambda: self.spool.flush(self.store, self.ledger))
        except OSError:
            return 0
        if self.spool.pending() == 0:
            self._degraded.spooled_keys.clear()
        return flushed

    def _publish_series(self, force: bool = False) -> bool:
        """Append one fleet sample and republish this worker's ring.

        Throttled to ``series_interval``; the ring is written whole
        (it is capped, so the payload is bounded) and published
        atomically, so readers on any host see a complete JSONL file.
        Publication failures are counted, never raised — telemetry
        must not take a worker down with the store.
        """
        now = time.time()
        if not force and now - self._series_last < self.series_interval:
            return False
        self._series_last = now
        self._series_seq += 1
        extra = {"units_run": self.units_run,
                 "spool_pending": self.spool.pending()}
        try:
            from repro.uarch import native
            extra["ops_retired"] = native.ops_retired()
        except Exception:
            pass
        self._series.append(timeseries.compact_sample(
            obs.metrics_snapshot(), source=self.worker_id,
            seq=self._series_seq, extra=extra))
        payload = "".join(json.dumps(rec, sort_keys=True) + "\n"
                          for rec in self._series).encode("utf-8")
        dst = self.root / "obs" / f"series-{self.worker_id}.jsonl"
        try:
            self.backend.publish_bytes(payload, dst)
        except OSError:
            obs.add("fabric.series_publish_errors")
            return False
        return True

    def run(self, *, max_units: int | None = None,
            idle_exit: float | None = None, should_stop=None) -> int:
        """Serve until stopped; returns how many units this agent ran.

        ``idle_exit`` bounds how long the agent waits with an empty
        queue before exiting (None = forever); the fabric-wide stop
        marker and ``should_stop`` both wind it down after the current
        unit — a graceful shutdown never abandons a claimed lease.
        """
        served = 0
        idle_since = time.monotonic()
        try:
            while True:
                if should_stop is not None and should_stop():
                    break
                if self.ledger.stop_requested():
                    break
                if max_units is not None and served >= max_units:
                    break
                self._seq += 1
                try:
                    self.ledger.write_worker_heartbeat(
                        self.worker_id, [], self._seq)
                except OSError:
                    obs.add("fabric.heartbeat_errors")
                self._reconcile_spool()
                self._publish_series()
                if self.serve_one():
                    served += 1
                    idle_since = time.monotonic()
                    continue
                if idle_exit is not None \
                        and time.monotonic() - idle_since > idle_exit:
                    break
                time.sleep(self.poll_interval)
        finally:
            for cleanup in (self._reconcile_spool,
                            lambda: self._publish_series(force=True),
                            lambda: self.ledger.remove_worker(
                                self.worker_id),
                            self.costs.save):
                try:
                    cleanup()
                except OSError:
                    pass
        return served

    def __repr__(self) -> str:
        return (f"WorkerAgent({self.worker_id!r}, "
                f"{self.backend.describe()!r})")
