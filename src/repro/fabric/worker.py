"""Worker agent: pull leases, run jobs, report outcomes.

One agent process serves one host.  Its loop is deliberately dumb —
all cleverness lives in layers that already exist:

1. scan the queue in filename order (which *is* the coordinator's LPT
   order), skip units that are leased or done, and try to claim the
   first claimable one (``O_EXCL`` — losing the race costs a directory
   scan, nothing more);
2. run the claimed unit through :func:`repro.exec.pool.run_jobs` —
   the same path a local campaign takes, so the shared result store,
   trace store, warm caches, retry/backoff and cost-model observation
   all apply unchanged (and the cost model's locked read-merge-write
   ``save`` is how this worker reports its runtime observations back
   for the coordinator's next LPT ordering);
3. publish a ``done/`` record (first writer wins) and release the
   lease.

A background thread renews the unit lease and the agent's own
heartbeat file while a job runs, so a long simulation is never
mistaken for a dead host.  If a renewal discovers the lease was
reclaimed (the agent was presumed dead), the run still completes —
execution is deterministic and the store content-addressed, so the
late completion either wins the ``done/`` race or is dropped by it,
and the campaign manifest's unit-keyed guard settles the unit exactly
once either way.

Worker spans parent under the coordinator's submitting span via the
``span`` tuple carried in the unit envelope, so one cross-host trace
shows request → campaign → unit → pool job.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path

from repro import obs
from repro.exec.backend import StoreBackend
from repro.exec.campaign import WorkloadFailure
from repro.exec.costmodel import CostModel
from repro.exec.pool import JobFailure, run_jobs
from repro.exec.store import ResultStore
from repro.fabric.coordinator import STORE_DIR, fabric_backend
from repro.fabric.lease import LeaseLedger
from repro.fabric.units import WorkUnit
from repro.obs.spans import SpanContext

#: default seconds between lease/worker heartbeat renewals
DEFAULT_HEARTBEAT = 1.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeater(threading.Thread):
    """Renews the unit lease + agent heartbeat while a job runs."""

    def __init__(self, ledger: LeaseLedger, worker: str, unit_id: str,
                 interval: float, seq_start: int):
        super().__init__(daemon=True)
        self.ledger = ledger
        self.worker = worker
        self.unit_id = unit_id
        self.interval = interval
        self.seq = seq_start
        self.lost = threading.Event()
        # NB: not ``_stop`` — that would shadow threading.Thread._stop
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.seq += 1
            self.ledger.write_worker_heartbeat(
                self.worker, [self.unit_id], self.seq)
            if not self.ledger.heartbeat(self.unit_id, self.worker):
                self.lost.set()     # reclaimed under us; finish anyway

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=self.interval * 4 + 1.0)
        return self.seq


class WorkerAgent:
    """One fabric worker process (one per host, typically)."""

    def __init__(self, root: str | Path | StoreBackend, *,
                 worker_id: str | None = None, shared: bool = False,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT,
                 poll_interval: float = 0.05,
                 max_retries: int = 3, retry_backoff: float = 0.1,
                 job_timeout: float | None = None):
        backend = fabric_backend(root, shared=shared)
        self.backend = backend
        self.root = backend.root
        self.worker_id = worker_id or default_worker_id()
        self.ledger = LeaseLedger(backend)
        self.ledger.ensure_layout()
        self.store = ResultStore(
            backend=fabric_backend(self.root / STORE_DIR, shared=shared))
        self.costs = CostModel.for_store(self.store)
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.job_timeout = job_timeout
        self._seq = 0
        self.units_run = 0

    # -- claiming --------------------------------------------------------

    def claim_next(self) -> WorkUnit | None:
        """Claim the first claimable queued unit, in dispatch order."""
        done = self.ledger.done_records()
        leases = self.ledger.active_leases()
        for unit_id, path in self.ledger.queue_entries():
            if unit_id in done:
                # settled long ago; opportunistically tidy the queue
                path.unlink(missing_ok=True)
                continue
            if unit_id in leases:
                continue
            if not self.ledger.claim(unit_id, self.worker_id):
                continue            # lost the race to another worker
            try:
                return WorkUnit.load(path)
            except (OSError, ValueError):
                # torn/vanished envelope: drop the claim, move on
                self.ledger.release(unit_id, self.worker_id)
                continue
        return None

    # -- execution -------------------------------------------------------

    def run_unit(self, unit: WorkUnit) -> dict:
        """Execute one claimed unit; returns the outcome record."""
        parent = SpanContext(*unit.span) if unit.span else None
        beat = _Heartbeater(self.ledger, self.worker_id, unit.unit_id,
                            self.heartbeat_interval, self._seq)
        beat.start()
        started = time.monotonic()
        try:
            with obs.span("fabric.unit", parent=parent,
                          unit=unit.unit_id, workload=unit.name,
                          worker=self.worker_id):
                cached = self.store.get(unit.key) is not None
                outcome = run_jobs(
                    [unit.job], n_jobs=1, store=self.store,
                    catch=(Exception,), timeout=self.job_timeout,
                    max_retries=self.max_retries,
                    retry_backoff=self.retry_backoff,
                    cost_model=self.costs)[0]
        finally:
            self._seq = beat.stop()
        seconds = time.monotonic() - started
        record = {"unit": unit.unit_id, "name": unit.name,
                  "key": unit.key, "worker": self.worker_id,
                  "seconds": seconds, "cached": cached}
        if isinstance(outcome, JobFailure):
            failure = WorkloadFailure.from_job_failure(outcome,
                                                       key=unit.key)
            record["status"] = "failed"
            record["failure"] = failure.to_json()
        else:
            record["status"] = "done"
        if beat.lost.is_set():
            record["lease_lost"] = True
            obs.add("fabric.late_completions")
        return record

    def serve_one(self) -> bool:
        """Claim + run + report one unit; ``False`` if none claimable."""
        unit = self.claim_next()
        if unit is None:
            return False
        record = self.run_unit(unit)
        self.ledger.complete(unit.unit_id, record)
        self.ledger.release(unit.unit_id, self.worker_id)
        self.ledger.remove_queued(unit.unit_id)
        self.units_run += 1
        obs.add("fabric.worker_units_run")
        return True

    def run(self, *, max_units: int | None = None,
            idle_exit: float | None = None, should_stop=None) -> int:
        """Serve until stopped; returns how many units this agent ran.

        ``idle_exit`` bounds how long the agent waits with an empty
        queue before exiting (None = forever); the fabric-wide stop
        marker and ``should_stop`` both wind it down after the current
        unit — a graceful shutdown never abandons a claimed lease.
        """
        served = 0
        idle_since = time.monotonic()
        try:
            while True:
                if should_stop is not None and should_stop():
                    break
                if self.ledger.stop_requested():
                    break
                if max_units is not None and served >= max_units:
                    break
                self._seq += 1
                self.ledger.write_worker_heartbeat(self.worker_id, [],
                                                   self._seq)
                if self.serve_one():
                    served += 1
                    idle_since = time.monotonic()
                    continue
                if idle_exit is not None \
                        and time.monotonic() - idle_since > idle_exit:
                    break
                time.sleep(self.poll_interval)
        finally:
            self.ledger.remove_worker(self.worker_id)
            self.costs.save()
        return served

    def __repr__(self) -> str:
        return (f"WorkerAgent({self.worker_id!r}, "
                f"{self.backend.describe()!r})")
