"""Filesystem lease protocol: claim, heartbeat, complete, reclaim.

The fabric's coordination substrate is the shared directory itself —
the same place the stores already live — so a fleet needs nothing but
a common mount (or one local disk, for single-host multi-process use).
Four subdirectories under the fabric root carry the whole protocol:

``queue/``
    Pending :class:`~repro.fabric.units.WorkUnit` envelopes, published
    atomically, named ``<rank:05d>-<unit>.json`` so a sorted directory
    listing is the LPT dispatch order.
``leases/``
    ``<unit>.lease`` — ownership claims, created with ``O_EXCL`` so
    exactly one worker wins a unit; the owner re-publishes the file
    (atomic replace, monotonically increasing ``seq``) as its
    heartbeat.
``done/``
    ``<unit>.json`` — outcome records, hard-linked into place so the
    *first* completion wins atomically; a late duplicate (a reclaimed
    worker that finished anyway) is detected and dropped.
``workers/``
    ``<worker>.json`` — per-agent heartbeats (pid, host, in-flight
    units) feeding the fleet-health gauges.

**Expiry is skew-immune.**  Lease and worker files carry wall-clock
timestamps for humans, but reclaim never compares cross-host clocks:
the coordinator fingerprints each heartbeat file's content and ages it
on its *own* monotonic clock — a lease expires when its content has
not changed for ``ttl`` seconds *as observed by the coordinator*.  A
worker host that dies (the chaos scenario) stops re-publishing, its
leases age out, and the units return to the claimable pool.

**Duplicate execution is benign by construction.**  A reclaimed worker
that is merely slow (not dead) may still finish its unit; the result
store is content-addressed and the simulator deterministic, so the
zombie and the re-execution publish identical bytes under the same
key, and the first ``done/`` record wins.  Correctness never depends
on the lease protocol being race-free — the leases only prevent
*wasted* work, which is exactly the guarantee a distributed lock on a
shared filesystem can honestly provide.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

from repro import obs
from repro.exec.backend import LocalDirBackend, StoreBackend, backend_for
from repro.fabric.units import WorkUnit

#: subdirectory names under the fabric root
QUEUE_DIR = "queue"
LEASES_DIR = "leases"
DONE_DIR = "done"
WORKERS_DIR = "workers"
#: coordinator HA: epoch claim files + coordinator heartbeats
ELECTION_DIR = "election"
COORDINATORS_DIR = "coordinators"

#: stop-marker filename (coordinator -> fleet shutdown request)
STOP_MARKER = "fabric.stop"


class LeadershipLost(RuntimeError):
    """A fenced coordinator write was refused: a higher epoch exists.

    The raiser is a *zombie ex-leader* — a coordinator that was
    presumed dead (GC pause, network partition, SIGSTOP) and replaced,
    now waking up and trying to mutate the ledger.  Its caller must
    stop coordinating immediately; the write that triggered this never
    happened.
    """


class _ChangeTracker:
    """Ages file contents on the local monotonic clock.

    ``observe(name, fingerprint)`` returns the seconds since the
    fingerprint last *changed*, as measured here — never by comparing
    a remote host's timestamp against ours.
    """

    def __init__(self) -> None:
        self._seen: dict[str, tuple[object, float]] = {}

    def observe(self, name: str, fingerprint: object,
                now: float | None = None) -> float:
        now = time.monotonic() if now is None else now
        prev = self._seen.get(name)
        if prev is None or prev[0] != fingerprint:
            self._seen[name] = (fingerprint, now)
            return 0.0
        return now - prev[1]

    def forget(self, name: str) -> None:
        self._seen.pop(name, None)


def _read_json(path: Path) -> dict | None:
    """Parse ``path`` as JSON; ``None`` on miss or torn write."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


class LeaseLedger:
    """The shared-directory lease protocol (both sides speak it)."""

    def __init__(self, root: str | os.PathLike | StoreBackend, *,
                 backend: StoreBackend | None = None):
        if isinstance(root, StoreBackend):
            backend = root
        elif backend is None:
            backend = LocalDirBackend(root)
        else:
            backend = backend_for(backend)
        self.backend = backend
        self.root = backend.root
        self._lease_tracker = _ChangeTracker()
        self._worker_tracker = _ChangeTracker()

    # -- paths ----------------------------------------------------------

    def queue_dir(self) -> Path:
        return self.root / QUEUE_DIR

    def lease_path(self, unit_id: str) -> Path:
        return self.root / LEASES_DIR / f"{unit_id}.lease"

    def done_path(self, unit_id: str) -> Path:
        return self.root / DONE_DIR / f"{unit_id}.json"

    def worker_path(self, worker: str) -> Path:
        return self.root / WORKERS_DIR / f"{worker}.json"

    def ensure_layout(self) -> None:
        for sub in (QUEUE_DIR, LEASES_DIR, DONE_DIR, WORKERS_DIR):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    def _publish_json(self, payload: dict, dst: Path) -> None:
        dst.parent.mkdir(parents=True, exist_ok=True)
        tmp = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            self.backend.publish(tmp, dst)
        finally:
            tmp.unlink(missing_ok=True)

    # -- queue ----------------------------------------------------------

    def enqueue(self, unit: WorkUnit, fence=None) -> Path:
        """Publish a work unit into the claimable queue.

        ``fence`` is an optional callable invoked immediately before
        the publish; a fenced coordinator passes its epoch check here
        so a zombie ex-leader's late requeue raises
        :class:`LeadershipLost` instead of polluting the queue.
        """
        dst = self.queue_dir() / unit.filename
        if fence is not None:
            fence()
        self._publish_json(unit.to_json(), dst)
        obs.add("fabric.units_enqueued")
        return dst

    def queue_entries(self) -> list[tuple[str, Path]]:
        """``(unit_id, path)`` of every queued unit, in dispatch order."""
        try:
            names = sorted(os.listdir(self.queue_dir()))
        except FileNotFoundError:
            return []
        out = []
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            unit_id = name[:-len(".json")].split("-", 1)[-1]
            out.append((unit_id, self.queue_dir() / name))
        return out

    def remove_queued(self, unit_id: str) -> None:
        for uid, path in self.queue_entries():
            if uid == unit_id:
                path.unlink(missing_ok=True)

    # -- leases (worker side) -------------------------------------------

    def claim(self, unit_id: str, worker: str) -> bool:
        """Try to take ownership of ``unit_id`` (``O_EXCL`` create)."""
        path = self.lease_path(unit_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"unit": unit_id, "worker": worker,
                              "seq": 0, "ts": time.time()},
                             sort_keys=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def heartbeat(self, unit_id: str, worker: str) -> bool:
        """Renew a lease; ``False`` means it was lost (reclaimed).

        The owner check is read-then-replace, not atomic — see the
        module docstring for why the residual race is benign.
        """
        path = self.lease_path(unit_id)
        current = _read_json(path)
        if current is None or current.get("worker") != worker:
            return False
        current["seq"] = int(current.get("seq", 0)) + 1
        current["ts"] = time.time()
        self._publish_json(current, path)
        return True

    def release(self, unit_id: str, worker: str) -> None:
        """Drop a lease we own (completion or graceful shutdown)."""
        current = _read_json(self.lease_path(unit_id))
        if current is not None and current.get("worker") == worker:
            self.lease_path(unit_id).unlink(missing_ok=True)

    def complete(self, unit_id: str, record: dict) -> bool:
        """Publish the outcome record; first completion wins.

        The record is written to a temp file and hard-linked into
        place — link fails atomically if a record already exists, which
        is the duplicate-completion detection for a zombie worker
        finishing after its lease was reclaimed and re-executed.
        """
        dst = self.done_path(unit_id)
        dst.parent.mkdir(parents=True, exist_ok=True)
        tmp = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(record, sort_keys=True),
                           encoding="utf-8")
            try:
                self.backend.link(tmp, dst)
            except FileExistsError:
                obs.add("fabric.duplicate_completions")
                return False
            except OSError:
                # Filesystem without hard links: degrade to the atomic
                # publish (last writer wins; records are equal anyway).
                # A persistent backend fault propagates from the
                # publish to the caller's spool-and-retry path.
                if dst.exists():
                    obs.add("fabric.duplicate_completions")
                    return False
                self.backend.publish(tmp, dst)
        finally:
            tmp.unlink(missing_ok=True)
        obs.add("fabric.units_completed")
        return True

    # -- coordination (reader side) -------------------------------------

    def active_leases(self) -> dict[str, dict]:
        """Unit id -> lease record for every live lease file."""
        out: dict[str, dict] = {}
        try:
            names = os.listdir(self.root / LEASES_DIR)
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".lease") or name.startswith("."):
                continue
            unit_id = name[:-len(".lease")]
            rec = _read_json(self.lease_path(unit_id))
            if rec is not None:
                out[unit_id] = rec
        return out

    def done_records(self) -> dict[str, dict]:
        """Unit id -> outcome record for every completed unit."""
        out: dict[str, dict] = {}
        try:
            names = os.listdir(self.root / DONE_DIR)
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            unit_id = name[:-len(".json")]
            rec = _read_json(self.done_path(unit_id))
            if rec is not None:
                out[unit_id] = rec
        return out

    def reclaim_expired(self, ttl: float,
                        now: float | None = None) -> list[str]:
        """Expire leases whose heartbeat went silent; return unit ids.

        A lease's age is the time since its *content* last changed, on
        this process's monotonic clock — no cross-host clock
        comparison.  Expired lease files are removed, which returns
        the unit to the claimable pool (its queue entry still exists).
        """
        reclaimed: list[str] = []
        leases = self.active_leases()
        for unit_id, rec in leases.items():
            fingerprint = (rec.get("worker"), rec.get("seq"))
            age = self._lease_tracker.observe(unit_id, fingerprint, now)
            if age > ttl:
                self.lease_path(unit_id).unlink(missing_ok=True)
                self._lease_tracker.forget(unit_id)
                reclaimed.append(unit_id)
                obs.add("fabric.units_reclaimed")
        for unit_id in set(self._lease_tracker._seen) - set(leases):
            self._lease_tracker.forget(unit_id)
        return reclaimed

    # -- worker heartbeats ----------------------------------------------

    def write_worker_heartbeat(self, worker: str,
                               inflight: list[str],
                               seq: int) -> None:
        self._publish_json(
            {"worker": worker, "pid": os.getpid(),
             "host": socket.gethostname(), "seq": seq,
             "ts": time.time(), "inflight": sorted(inflight)},
            self.worker_path(worker))

    def remove_worker(self, worker: str) -> None:
        self.worker_path(worker).unlink(missing_ok=True)

    def workers(self, ttl: float | None = None,
                now: float | None = None) -> dict[str, dict]:
        """Worker id -> heartbeat record (+ ``age_s`` as observed here).

        With ``ttl``, only workers whose heartbeat content changed
        within the last ``ttl`` seconds are returned (the fleet-health
        "alive" definition).
        """
        out: dict[str, dict] = {}
        try:
            names = os.listdir(self.root / WORKERS_DIR)
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            worker = name[:-len(".json")]
            rec = _read_json(self.worker_path(worker))
            if rec is None:
                continue
            age = self._worker_tracker.observe(worker, rec.get("seq"),
                                               now)
            if ttl is not None and age > ttl:
                continue
            rec["age_s"] = age
            out[worker] = rec
        return out

    # -- fleet stop flag -------------------------------------------------

    def request_stop(self) -> None:
        """Ask every agent polling this fabric dir to wind down."""
        self._publish_json({"ts": time.time()}, self.root / STOP_MARKER)

    def stop_requested(self) -> bool:
        return (self.root / STOP_MARKER).exists()

    def clear_stop(self) -> None:
        (self.root / STOP_MARKER).unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"LeaseLedger({self.backend.describe()!r})"


def default_coordinator_id() -> str:
    """A coordinator id unique per host+process."""
    return f"c-{socket.gethostname()}-{os.getpid()}"


class Election:
    """Epoch-numbered coordinator leadership over the shared directory.

    Same idiom as the unit leases, one level up: leadership of epoch
    ``E`` is an ``O_EXCL`` claim on ``election/epoch-<E>.json`` — the
    filesystem guarantees exactly one winner per epoch — and the
    *current* leader is whoever owns the highest epoch.  The leader
    re-publishes ``coordinators/<id>.json`` (atomic replace, monotonic
    ``seq``) as its heartbeat; standbys age that heartbeat's content on
    their own monotonic clock (skew-immune, like lease expiry) and
    claim epoch ``E+1`` when it goes stale.

    Epochs only grow, which is what makes **fencing** work: a zombie
    ex-leader that wakes up after a takeover still holds epoch ``E``,
    but :meth:`check` sees ``E+1`` on disk and raises
    :class:`LeadershipLost` before the stale write lands.  Late writes
    from a deposed coordinator are thereby rejected rather than
    corrupting the ledger.
    """

    def __init__(self, ledger: LeaseLedger):
        self.ledger = ledger
        self.root = ledger.root
        self._tracker = _ChangeTracker()

    # -- paths ----------------------------------------------------------

    def epoch_path(self, epoch: int) -> Path:
        return self.root / ELECTION_DIR / f"epoch-{epoch:08d}.json"

    def coordinator_path(self, coordinator: str) -> Path:
        return self.root / COORDINATORS_DIR / f"{coordinator}.json"

    # -- reading the board ----------------------------------------------

    def current(self) -> tuple[str, int] | None:
        """``(coordinator_id, epoch)`` of the highest claimed epoch.

        Torn claim files (a claimer that died mid-write) are skipped;
        leadership falls back to the highest *parseable* epoch.
        """
        try:
            names = sorted(os.listdir(self.root / ELECTION_DIR),
                           reverse=True)
        except FileNotFoundError:
            return None
        for name in names:
            if not name.startswith("epoch-") or not name.endswith(".json"):
                continue
            rec = _read_json(self.root / ELECTION_DIR / name)
            if rec is not None and "coordinator" in rec:
                return str(rec["coordinator"]), int(rec["epoch"])
        return None

    def leader_age(self, now: float | None = None) -> float | None:
        """Seconds since the current leader's heartbeat last changed.

        ``None`` when there is no leader at all.  A leader that never
        wrote a heartbeat ages from the moment *we* first looked; a
        ``resigned`` heartbeat reads as infinitely old so a graceful
        handover does not wait out the ttl.
        """
        cur = self.current()
        if cur is None:
            return None
        cid, epoch = cur
        rec = _read_json(self.coordinator_path(cid)) or {}
        if rec.get("resigned"):
            return float("inf")
        fingerprint = (cid, epoch, rec.get("seq"))
        return self._tracker.observe(f"leader:{cid}", fingerprint, now)

    def coordinators(self, now: float | None = None) -> dict[str, dict]:
        """Coordinator id -> heartbeat record (+ ``age_s`` observed here)."""
        out: dict[str, dict] = {}
        try:
            names = os.listdir(self.root / COORDINATORS_DIR)
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            cid = name[:-len(".json")]
            rec = _read_json(self.coordinator_path(cid))
            if rec is None:
                continue
            rec["age_s"] = self._tracker.observe(
                f"hb:{cid}", (rec.get("epoch"), rec.get("seq")), now)
            out[cid] = rec
        return out

    # -- claiming and holding leadership --------------------------------

    def _claim(self, coordinator: str, epoch: int) -> bool:
        """Try to win ``epoch`` (``O_EXCL``; exactly one winner)."""
        path = self.epoch_path(epoch)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"coordinator": coordinator, "epoch": epoch,
             "ts": time.time()}, sort_keys=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def try_takeover(self, coordinator: str, ttl: float,
                     now: float | None = None) -> int | None:
        """Become leader if the seat is empty, ours, or expired.

        Returns the epoch we now lead, or ``None`` while a live leader
        holds it.  Losing the ``O_EXCL`` race to another standby is a
        clean ``None`` too — the winner's heartbeat resets our aging.
        """
        cur = self.current()
        if cur is None:
            if self._claim(coordinator, 1):
                obs.add("fabric.leadership_acquired")
                return 1
            return None
        cid, epoch = cur
        if cid == coordinator:
            return epoch
        age = self.leader_age(now)
        if age is not None and age > ttl:
            if self._claim(coordinator, epoch + 1):
                obs.add("fabric.leadership_acquired")
                return epoch + 1
        return None

    def heartbeat(self, coordinator: str, epoch: int, seq: int) -> None:
        """Publish/refresh this coordinator's liveness record."""
        self.ledger._publish_json(
            {"coordinator": coordinator, "epoch": epoch, "seq": seq,
             "ts": time.time(), "pid": os.getpid(),
             "host": socket.gethostname()},
            self.coordinator_path(coordinator))

    def resign(self, coordinator: str) -> None:
        """Graceful handover: mark our heartbeat as resigned."""
        rec = _read_json(self.coordinator_path(coordinator)) or {
            "coordinator": coordinator}
        rec["resigned"] = True
        rec["ts"] = time.time()
        self.ledger._publish_json(rec, self.coordinator_path(coordinator))

    # -- fencing ---------------------------------------------------------

    def check(self, epoch: int) -> None:
        """Raise :class:`LeadershipLost` if a higher epoch exists.

        Called by a fenced coordinator immediately before every ledger
        mutation; this is what turns a zombie ex-leader's late write
        into a rejected no-op.
        """
        cur = self.current()
        if cur is not None and cur[1] > epoch:
            obs.add("fabric.fenced_writes_rejected")
            raise LeadershipLost(
                f"epoch {epoch} fenced out by epoch {cur[1]} "
                f"({cur[0]})")
