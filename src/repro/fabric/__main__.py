"""``python -m repro.fabric`` — same entry point as ``repro-fabric``."""

from repro.fabric.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
