"""Characterization-as-a-service: a stdlib-asyncio HTTP front-end.

``repro-fabric serve`` turns a fabric directory into a service: POST a
characterization request and the service answers from the shared
content-addressed store when the fleet has already computed every key
(a *pure* cache hit — zero new jobs), or enqueues work units for the
misses and lets the worker fleet fill them in.  The request identity
*is* the set of job cache keys, so deduplication is exact by
construction: same workloads + machine + fidelity + seed + source
tree → same keys → same request id.

The server is hand-rolled HTTP/1.1 over ``asyncio.start_server`` —
the container policy is stdlib-only, and the protocol surface needed
here (five routes, JSON bodies, one NDJSON stream) does not justify a
framework.  Endpoints:

``POST /characterize``
    Body: ``{"benchmarks": [...]}`` or ``{"suite": "dotnet"}``, plus
    optional ``machine`` (preset name), ``instructions``, ``warmup``,
    ``seed``.  Replies with the request id, per-workload keys, and
    whether the whole request was served from the store.
``GET /requests/<id>``
    Settlement status; includes per-workload summaries once done.
``GET /requests/<id>/stream``
    NDJSON progress events (one line per settled workload, then a
    terminal ``request-done`` line) — connection close delimits.
``GET /healthz``
    Liveness plus the fleet view: workers, queue depth, leases, the
    current coordinator leader (id + epoch), per-coordinator
    heartbeat ages, and whether the shared store answers reads.
``GET /metrics``
    Prometheus text format: the process's ``repro.obs`` registry,
    which includes the per-worker fleet-health gauges the coordinator
    publishes on every poll.

Observability crosses the HTTP boundary: a client may send an
``X-Repro-Span: <trace_id>:<span_id>`` header and the service parents
its request span (and therefore every unit span, on whatever host the
unit runs) under the caller's context; responses echo the service's
own span ids back in the same header.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from dataclasses import asdict

from repro import obs
from repro.exec.campaign import CampaignManifest
from repro.exec.jobs import JobSpec, code_fingerprint
from repro.fabric.coordinator import MANIFEST_NAME, Coordinator
from repro.harness.runner import Fidelity
from repro.obs import timeseries
from repro.obs.metrics import labeled
from repro.obs.spans import SpanContext
from repro.uarch.machine import get_machine

SPAN_HEADER = "x-repro-span"

_SUITES = {
    "dotnet": "dotnet_category_specs",
    "aspnet": "aspnet_specs",
    "speccpu": "speccpu_specs",
}


class BadRequest(ValueError):
    """Client error: malformed characterization request."""


def _all_specs():
    from repro.workloads.aspnet import aspnet_specs
    from repro.workloads.dotnet import dotnet_category_specs
    from repro.workloads.speccpu import speccpu_specs
    return dotnet_category_specs() + aspnet_specs() + speccpu_specs()


def parse_request(body: dict) -> tuple[list, object, Fidelity, int]:
    """Resolve a request body into (specs, machine, fidelity, seed)."""
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    specs = _all_specs()
    if "suite" in body:
        if body["suite"] not in _SUITES:
            raise BadRequest(f"unknown suite {body['suite']!r}")
        selected = [s for s in specs if s.suite == body["suite"]]
    elif "benchmarks" in body:
        names = body["benchmarks"]
        if not isinstance(names, list) or not names:
            raise BadRequest("'benchmarks' must be a non-empty list")
        by_name = {s.name: s for s in specs}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise BadRequest(f"unknown benchmark(s): {missing}")
        selected = [by_name[n] for n in names]
    else:
        raise BadRequest("request needs 'benchmarks' or 'suite'")
    try:
        machine = get_machine(body.get("machine", "i9"))
    except KeyError as err:
        raise BadRequest(str(err)) from None
    fidelity = Fidelity(
        warmup_instructions=int(body.get("warmup", 60_000)),
        measure_instructions=int(body.get("instructions", 150_000)))
    return selected, machine, fidelity, int(body.get("seed", 0))


class _Request:
    """Server-side state of one characterization request."""

    def __init__(self, req_id: str, sub, jobs: list[JobSpec],
                 machine_name: str):
        self.id = req_id
        self.sub = sub
        self.jobs = jobs
        self.machine = machine_name
        self.created = time.time()
        self.events: list[dict] = []
        self.finished = threading.Event()
        self._reported: set[int] = set()

    def absorb(self, store) -> None:
        """Turn newly settled outcomes into stream events."""
        for i, (status, payload) in sorted(self.sub.outcomes.items()):
            if i in self._reported:
                continue
            self._reported.add(i)
            event = {"event": "settled", "request": self.id,
                     "workload": self.jobs[i].name,
                     "key": self.sub.keys[i], "status": status}
            if status == "failed":
                event["failure"] = payload.to_json()
            self.events.append(event)
        if self.sub.done and not self.finished.is_set():
            self.events.append({
                "event": "request-done", "request": self.id,
                "done": sum(1 for s, _ in self.sub.outcomes.values()
                            if s == "done"),
                "failed": sum(1 for s, _ in self.sub.outcomes.values()
                              if s == "failed")})
            self.finished.set()

    def status_json(self, store) -> dict:
        out = {
            "request": self.id,
            "machine": self.machine,
            "total": len(self.jobs),
            "settled": len(self.sub.outcomes),
            "pending": len(self.sub.pending),
            "status": "done" if self.finished.is_set() else "running",
        }
        if self.finished.is_set():
            results, failures = [], []
            for i, (status, payload) in sorted(self.sub.outcomes.items()):
                if status == "failed":
                    failures.append(payload.to_json())
                    continue
                summary = {"name": self.jobs[i].name,
                           "key": self.sub.keys[i]}
                result = store.get(self.sub.keys[i])
                if result is not None:
                    summary["seconds"] = result.seconds
                    summary["ipc"] = result.ipc
                    summary["counters"] = asdict(result.counters)
                results.append(summary)
            out["results"] = results
            out["failures"] = failures
        return out


class CharacterizationService:
    """The HTTP front-end over one :class:`Coordinator`."""

    def __init__(self, coordinator: Coordinator, *,
                 manifest: CampaignManifest | None = None,
                 pump_interval: float = 0.05):
        self.coordinator = coordinator
        self.manifest = manifest or CampaignManifest(
            coordinator.root / MANIFEST_NAME)
        self.pump_interval = pump_interval
        self._requests: dict[str, _Request] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._pump_thread: threading.Thread | None = None

    # -- request lifecycle ----------------------------------------------

    @staticmethod
    def request_id(keys: list[str]) -> str:
        digest = hashlib.sha256(
            "\n".join(sorted(keys)).encode()).hexdigest()
        return f"r{digest[:16]}"

    def submit(self, body: dict,
               parent: SpanContext | None = None) -> tuple[dict, int]:
        """Handle one POST /characterize; returns (reply, http status)."""
        specs, machine, fidelity, seed = parse_request(body)
        jobs = [JobSpec(spec=spec, machine=machine, fidelity=fidelity,
                        seed=seed) for spec in specs]
        fingerprint = code_fingerprint()
        keys = [job.cache_key(fingerprint) for job in jobs]
        req_id = self.request_id(keys)
        obs.add("fabric.service_requests")

        with self._lock:
            existing = self._requests.get(req_id)
            if existing is not None:
                obs.add("fabric.service_request_dedups")
                return ({"request": req_id, "keys": keys,
                         "deduplicated": True,
                         "status": ("done" if existing.finished.is_set()
                                    else "running")}, 200)
            with obs.span("fabric.request", parent=parent,
                          request=req_id, workloads=len(jobs)):
                self.manifest.begin(fingerprint, total=len(jobs))
                sub = self.coordinator.submit(jobs, fingerprint)
            for i, (status, _) in sub.outcomes.items():
                if status == "done":
                    self.manifest.record(sub.keys[i], jobs[i].name,
                                         "done")
            req = _Request(req_id, sub, jobs, machine.name)
            req.absorb(self.coordinator.store)
            self._requests[req_id] = req
        hit = sub.dedup_hits == len(jobs)
        if hit:
            obs.add("fabric.service_store_hits")
        return ({"request": req_id, "keys": keys,
                 "enqueued": len(sub.pending), "store_hits":
                 sub.dedup_hits, "served_from_store": hit,
                 "status": "done" if sub.done else "running"}, 202)

    def _pump(self) -> None:
        while not self._stop.wait(self.pump_interval):
            with self._lock:
                for req in self._requests.values():
                    if req.finished.is_set():
                        continue
                    self.coordinator.poll(req.sub, self.manifest)
                    req.absorb(self.coordinator.store)

    def start(self) -> None:
        if self._pump_thread is None:
            self._pump_thread = threading.Thread(target=self._pump,
                                                 daemon=True)
            self._pump_thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5.0)
            self._pump_thread = None

    # -- views -----------------------------------------------------------

    def request_view(self, req_id: str) -> dict | None:
        with self._lock:
            req = self._requests.get(req_id)
            if req is None:
                return None
            return req.status_json(self.coordinator.store)

    def health_json(self) -> dict:
        ledger = self.coordinator.ledger
        workers = ledger.workers()
        election = self.coordinator.election
        leader = election.current()
        return {"ok": True,
                "requests": len(self._requests),
                "queue_depth": len(ledger.queue_entries()),
                "leases": len(ledger.active_leases()),
                "leader": ({"coordinator": leader[0],
                            "epoch": leader[1]}
                           if leader is not None else None),
                "coordinators": {
                    cid: {"age_s": rec["age_s"],
                          "epoch": rec.get("epoch"),
                          "resigned": bool(rec.get("resigned"))}
                    for cid, rec in election.coordinators().items()},
                "store_reachable": self.coordinator.store_reachable(),
                "workers": {w: {"age_s": rec["age_s"],
                                "inflight": rec.get("inflight", [])}
                            for w, rec in workers.items()}}

    def metrics_text(self) -> str:
        """Prometheus exposition: obs registry + live fleet gauges.

        The fleet-health gauges are computed here from the ledger
        directly (not just copied from ``repro.obs``), so the scrape
        is meaningful even when observability is globally disabled.
        Per-worker series are proper labeled families
        (``...{worker="w1"}``) so a scraper can aggregate across the
        fleet, and each worker's latest published time-series sample
        (:mod:`repro.obs.timeseries` rings under ``<root>/obs``) is
        folded in as ``fabric.worker.*`` gauges — the same numbers
        ``repro-obs top`` renders.
        """
        registry = obs.MetricsRegistry()
        snap = obs.metrics_snapshot()
        if snap:
            registry.merge(snap)
        ledger = self.coordinator.ledger
        leases = ledger.active_leases()
        workers = ledger.workers()
        ttl = self.coordinator.lease_ttl
        registry.gauge_set("fabric.queue_depth",
                           float(len(ledger.queue_entries())))
        registry.gauge_set("fabric.leases_active", float(len(leases)))
        registry.gauge_set("fabric.workers_alive",
                           float(sum(1 for rec in workers.values()
                                     if rec["age_s"] <= ttl)))
        per_worker: dict[str, int] = {w: 0 for w in workers}
        for rec in leases.values():
            owner = rec.get("worker", "?")
            per_worker[owner] = per_worker.get(owner, 0) + 1
        for worker, rec in workers.items():
            registry.gauge_set(
                labeled("fabric.worker.leases", worker=worker),
                float(per_worker.get(worker, 0)))
            registry.gauge_set(
                labeled("fabric.worker.heartbeat_age_s", worker=worker),
                float(rec["age_s"]))
        for source, sample in timeseries.latest_by_source(
                self.coordinator.root / "obs").items():
            registry.gauge_set(
                labeled("fabric.worker.units_run", worker=source),
                float(sample.get("units_run", 0)))
            registry.gauge_set(
                labeled("fabric.worker.spool_pending", worker=source),
                float(sample.get("spool_pending", 0)))
            registry.gauge_set(
                labeled("fabric.worker.sample_age_s", worker=source),
                max(0.0, time.time() - sample.get("t_wall", 0.0)))
            if "ops_retired" in sample:
                registry.gauge_set(
                    labeled("fabric.worker.ops_retired", worker=source),
                    float(sample["ops_retired"]))
        with self._lock:
            registry.gauge_set("fabric.service_requests_open",
                               float(len(self._requests)))
        return registry.to_prometheus()


# ---------------------------------------------------------------------------
# The asyncio HTTP layer
# ---------------------------------------------------------------------------

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _response(status: int, body: bytes, content_type: str,
              extra: dict[str, str] | None = None) -> bytes:
    head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for key, value in (extra or {}).items():
        head.append(f"{key}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


def _json_response(status: int, payload: dict,
                   extra: dict[str, str] | None = None) -> bytes:
    return _response(status,
                     (json.dumps(payload) + "\n").encode(),
                     "application/json", extra)


class FabricServer:
    """Asyncio HTTP server wrapping a :class:`CharacterizationService`."""

    def __init__(self, service: CharacterizationService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 read_timeout: float = 10.0,
                 write_timeout: float = 10.0,
                 max_inflight: int = 64):
        self.service = service
        self.host = host
        self.port = port
        #: seconds a client gets to deliver its full request
        self.read_timeout = read_timeout
        #: seconds a client gets to drain each response write
        self.write_timeout = write_timeout
        #: concurrent /characterize submissions before 503 backpressure
        self.max_inflight = max_inflight
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            raw = await self._respond(reader, writer)
            if raw is not None:
                writer.write(raw)
                await asyncio.wait_for(writer.drain(),
                                       self.write_timeout)
        except asyncio.TimeoutError:
            pass    # slow client: drop the connection, free the slot
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as err:      # never kill the accept loop
            try:
                writer.write(_json_response(
                    500, {"error": type(err).__name__,
                          "message": str(err)}))
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = request_line.split()
        if len(parts) < 2:
            raise BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)
        return method, path, headers, body

    def _span_parent(self, headers) -> SpanContext | None:
        raw = headers.get(SPAN_HEADER, "")
        if ":" not in raw:
            return None
        trace_id, _, span_id = raw.partition(":")
        if not trace_id or not span_id:
            return None
        return SpanContext(trace_id, span_id)

    async def _respond(self, reader, writer) -> bytes | None:
        try:
            method, path, headers, body = await asyncio.wait_for(
                self._read_request(reader), self.read_timeout)
        except asyncio.TimeoutError:
            # slow-client guard: a dribbling request must not pin a
            # connection (and its buffers) open indefinitely
            obs.add("fabric.service_read_timeouts")
            return _json_response(408,
                                  {"error": "request read timed out"})
        except BadRequest as err:
            return _json_response(400, {"error": str(err)})
        span_echo = {}
        ids = obs.current_ids()
        if ids is not None:
            span_echo["X-Repro-Span"] = f"{ids[0]}:{ids[1]}"

        if path == "/healthz" and method == "GET":
            return _json_response(200, self.service.health_json())
        if path == "/metrics" and method == "GET":
            return _response(200, self.service.metrics_text().encode(),
                             "text/plain; version=0.0.4")
        if path == "/characterize":
            if method != "POST":
                return _json_response(405, {"error": "POST required"})
            try:
                payload = json.loads(body.decode() or "{}")
            except ValueError:
                return _json_response(400, {"error": "invalid JSON body"})
            if self._inflight >= self.max_inflight:
                # bounded request queue: shed load with an honest 503
                # instead of queueing unboundedly behind the executor
                obs.add("fabric.service_rejected")
                return _json_response(
                    503, {"error": "submission queue full"},
                    {"Retry-After": "1"})
            parent = self._span_parent(headers)
            loop = asyncio.get_running_loop()
            self._inflight += 1
            try:
                reply, status = await loop.run_in_executor(
                    None, self.service.submit, payload, parent)
            except BadRequest as err:
                return _json_response(400, {"error": str(err)})
            finally:
                self._inflight -= 1
            return _json_response(status, reply, span_echo)
        if path.startswith("/requests/"):
            if method != "GET":
                return _json_response(405, {"error": "GET required"})
            rest = path[len("/requests/"):]
            if rest.endswith("/stream"):
                await self._stream(writer, rest[:-len("/stream")])
                return None
            view = self.service.request_view(rest)
            if view is None:
                return _json_response(404,
                                      {"error": f"unknown request {rest}"})
            return _json_response(200, view, span_echo)
        return _json_response(404, {"error": f"no route for {path}"})

    async def _stream(self, writer: asyncio.StreamWriter,
                      req_id: str) -> None:
        with self.service._lock:
            req = self.service._requests.get(req_id)
        if req is None:
            writer.write(_json_response(
                404, {"error": f"unknown request {req_id}"}))
            await writer.drain()
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            with self.service._lock:
                events = list(req.events)
            for event in events[sent:]:
                writer.write((json.dumps(event) + "\n").encode())
            sent = len(events)
            await asyncio.wait_for(writer.drain(), self.write_timeout)
            if req.finished.is_set() and sent == len(req.events):
                return
            await asyncio.sleep(0.05)


def serve(service: CharacterizationService, host: str = "127.0.0.1",
          port: int = 8137) -> None:
    """Run the server until interrupted (the CLI entry point)."""

    async def _main() -> None:
        server = FabricServer(service, host, port)
        await server.start()
        print(f"repro-fabric serving on {server.url}")
        try:
            await asyncio.Event().wait()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A running server on a background event loop (tests, embedding)."""

    def __init__(self, service: CharacterizationService,
                 host: str = "127.0.0.1", port: int = 0,
                 **server_kwargs):
        self.server = FabricServer(service, host, port, **server_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.server.close())
        self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("fabric server failed to start")
        return self

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
