"""Work units: the leasable, serializable quantum of fabric work.

A :class:`WorkUnit` wraps one :class:`~repro.exec.jobs.JobSpec` with
everything the fleet protocol needs around it: a campaign-unique unit
id (distinct from the result cache key, so a reclaim re-enqueue or a
second campaign over the same key journals separately), the
coordinator-assigned LPT rank, the shared cost model's key, and the
coordinator's :class:`~repro.obs.spans.SpanContext` so worker spans
parent under the submitting request across host boundaries.

Units are published as JSON envelopes — human-auditable metadata plus
a base64 pickle of the ``JobSpec`` itself (the spec graph is plain
dataclasses; the code-fingerprint in the cache key already guarantees
coordinator and workers run the same tree, which is exactly the
precondition pickle needs).  Queue filenames embed the zero-padded
rank (``<rank:05d>-<unit>.json``), so a worker's lexical directory
scan *is* the coordinator's longest-processing-time-first dispatch
order — no extra index file, no second source of truth.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.jobs import JobSpec

#: bump when the on-disk unit envelope changes shape
UNIT_SCHEMA = 1


@dataclass(frozen=True)
class WorkUnit:
    """One leasable unit of fleet work."""

    unit_id: str
    name: str
    #: result-store cache key (the dedup identity fleet-wide)
    key: str
    #: shared cost-model key (LPT ordering input)
    cost_key: str
    #: coordinator-assigned dispatch rank (0 dispatches first)
    rank: int
    job: JobSpec = field(compare=False)
    #: submitting span ``(trace_id, span_id)`` for cross-host parenting
    span: tuple[str, str] | None = None
    #: expected seconds at submission (telemetry; None = never observed)
    estimate: float | None = None
    #: leader epoch that (re)enqueued this unit (None = unfenced)
    epoch: int | None = None

    @property
    def filename(self) -> str:
        return f"{self.rank:05d}-{self.unit_id}.json"

    def to_json(self) -> dict:
        return {
            "schema": UNIT_SCHEMA,
            "unit": self.unit_id,
            "name": self.name,
            "key": self.key,
            "cost_key": self.cost_key,
            "rank": self.rank,
            "span": list(self.span) if self.span else None,
            "estimate": self.estimate,
            "epoch": self.epoch,
            "job_pkl": base64.b64encode(
                pickle.dumps(self.job,
                             protocol=pickle.HIGHEST_PROTOCOL)).decode(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "WorkUnit":
        if data.get("schema") != UNIT_SCHEMA:
            raise ValueError(
                f"unknown work-unit schema {data.get('schema')!r}")
        span = data.get("span")
        return cls(
            unit_id=data["unit"],
            name=data["name"],
            key=data["key"],
            cost_key=data["cost_key"],
            rank=int(data["rank"]),
            job=pickle.loads(base64.b64decode(data["job_pkl"])),
            span=(span[0], span[1]) if span else None,
            estimate=data.get("estimate"),
            epoch=data.get("epoch"),
        )

    @classmethod
    def load(cls, path: str | Path) -> "WorkUnit":
        return cls.from_json(json.loads(Path(path).read_text()))


def make_unit_id(seq: int, key: str) -> str:
    """Campaign-unique unit id: sequence number + key prefix.

    The key prefix makes ids greppable against the store; the sequence
    number keeps two submissions of the same key distinct (the
    duplicate-completion guard in the manifest is keyed by unit id, so
    a legitimate re-enqueue must not collide with its predecessor).
    """
    return f"u{seq:05d}-{key[:12]}"


def unit_id_of(filename: str) -> str:
    """The unit id embedded in a queue/done/lease filename."""
    stem = filename
    for suffix in (".json", ".lease"):
        if stem.endswith(suffix):
            stem = stem[:-len(suffix)]
            break
    # queue entries carry a "<rank>-" prefix; lease/done files do not
    if "-" in stem and not stem.startswith("u"):
        stem = stem.split("-", 1)[1]
    return stem
