"""Deterministic synthetic-code regions.

A :class:`CodeRegion` models a contiguous range of machine code as a
sequence of basic blocks with *fixed, per-block* properties (size, branch
bias, memory-op counts) derived from a seed.  Re-walking the same region
replays the same PCs and branch biases, so PC-indexed hardware structures
(I-cache, I-TLB, BTB, gshare tables, the DSB) can train on it — and lose
that training when the region is re-emitted at a new base address after a
JIT event, which is the central mechanism behind the paper's cold-start
findings (§VII-A1).

The walker is the single hottest loop in the repository: everything it
yields is a plain tuple from :mod:`repro.trace`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.trace import (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE,
                         _KERNEL_BIT)


@dataclass(frozen=True)
class MixProfile:
    """Instruction-mix shape for generated code.

    ``branch_frac + load_frac + store_frac`` must be < 1; the remainder is
    plain ALU/FP work.  ``avg_block_instr`` is implied by ``branch_frac``
    (one branch terminates each block).
    """

    branch_frac: float = 0.16
    load_frac: float = 0.28
    store_frac: float = 0.14
    bytes_per_instr: float = 4.0
    taken_bias: float = 0.45        # fraction of biased branches biased taken
    bias_spread: float = 0.35       # control-flow entropy knob: scales the
                                    # share of hard-to-predict branches
    loop_frac: float = 0.12         # fraction of blocks that are loop bodies
    avg_loop_trips: float = 6.0
    #: bytes of region per hot entry point — higher = fewer, hotter paths
    #: (native loop-dominated code is far more concentrated than a
    #: managed method soup)
    hot_entry_divisor: int = 2000

    def __post_init__(self) -> None:
        total = self.branch_frac + self.load_frac + self.store_frac
        if not 0 < self.branch_frac <= 0.5:
            raise ValueError(f"branch_frac {self.branch_frac} out of (0, 0.5]")
        if total >= 1.0:
            raise ValueError(f"instruction fractions sum to {total} >= 1")

    @property
    def block_instructions(self) -> float:
        """Average total instructions per basic block (incl. the branch)."""
        return 1.0 / self.branch_frac


class CodeRegion:
    """A seeded, immutable layout of basic blocks in one code range.

    Parameters
    ----------
    base:
        Starting virtual address.  Rebasing a region (JIT re-emission)
        means constructing a new region with the same seed and a new base:
        identical structure, disjoint PCs.
    size_bytes:
        Region size; the number of blocks follows from the mix profile.
    seed:
        Layout seed; two regions with equal (seed, size, mix) have
        identical internal structure.
    """

    #: regions larger than this model one chunk of blocks and alias its
    #: layout across the full range (keeps construction O(1 MiB) while
    #: I-side structures still see the full footprint on excursions)
    MODEL_BYTES = 1024 * 1024

    __slots__ = ("base", "size_bytes", "mix", "seed", "n_blocks",
                 "_pc", "_n_other", "_n_bytes", "_p_taken",
                 "_n_loads", "_n_stores", "_is_loop", "_trips",
                 "_taken_target", "_hot_entries", "n_chunks",
                 "_chunk_bytes")

    def __init__(self, base: int, size_bytes: int, seed: int,
                 mix: MixProfile | None = None) -> None:
        mix = mix or MixProfile()
        self.base = base
        self.size_bytes = size_bytes
        self.mix = mix
        self.seed = seed
        model_bytes = min(size_bytes, self.MODEL_BYTES)
        self.n_chunks = max(1, size_bytes // model_bytes)
        self._chunk_bytes = model_bytes
        block_bytes = mix.block_instructions * mix.bytes_per_instr
        n_blocks = max(1, int(model_bytes / block_bytes))
        self.n_blocks = n_blocks
        # Vectorized construction (regions can have tens of thousands of
        # blocks; per-block Python RNG calls dominated startup cost).
        rng = np.random.default_rng(seed)
        target_total = mix.block_instructions
        total = np.maximum(
            2, np.rint(rng.normal(target_total, target_total * 0.3,
                                  n_blocks)).astype(np.int64))
        loads = np.clip(
            np.rint(total * mix.load_frac
                    + rng.uniform(-0.5, 0.5, n_blocks)).astype(np.int64),
            0, total - 1)
        stores = np.clip(
            np.rint(total * mix.store_frac
                    + rng.uniform(-0.5, 0.5, n_blocks)).astype(np.int64),
            0, total - 1 - loads)
        other = np.maximum(0, total - 1 - loads - stores)
        nbytes = np.maximum(
            8, np.rint(total * mix.bytes_per_instr).astype(np.int64))
        # Real code's branch biases are bimodal: most branches are
        # strongly biased (predictable), a minority are data-dependent
        # coin flips.  bias_spread scales that minority share.
        bias = np.where(rng.random(n_blocks) < mix.taken_bias, 0.97, 0.03)
        hard = rng.random(n_blocks) < mix.bias_spread * 0.22
        bias = np.where(hard, 0.25 + rng.random(n_blocks) * 0.5, bias)
        is_loop = rng.random(n_blocks) < mix.loop_frac
        trips = np.where(
            is_loop,
            np.maximum(2, np.rint(rng.exponential(mix.avg_loop_trips,
                                                  n_blocks))),
            1).astype(np.int64)
        pc = self.base + np.concatenate(
            ([0], np.cumsum(nbytes)[:-1]))
        # Each block's taken-branch target is fixed (direct branches have
        # one target); only the periodic indirect-call jump varies.
        idx = np.arange(n_blocks, dtype=np.int64)
        taken_target = (idx + 2 + ((idx * 2654435761 + seed) & 3)) % n_blocks
        # Hot entry points: dynamic execution concentrates on a bounded
        # set of paths (~entry * 8-block runs), sized so a region's hot
        # code footprint saturates around 100-200 KiB regardless of its
        # static size — matching how real programs execute a small slice
        # of their text most of the time.
        h = min(n_blocks, max(4, min(size_bytes, self.MODEL_BYTES)
                               // mix.hot_entry_divisor))
        entries = np.unique((rng.random(h) ** 2 * n_blocks).astype(int))
        self._hot_entries = entries.tolist() or [0]
        # Plain lists index faster than numpy scalars in the walk loop.
        self._pc = pc.tolist()
        self._n_other = other.tolist()
        self._n_bytes = nbytes.tolist()
        self._p_taken = np.clip(bias, 0.02, 0.98).tolist()
        self._n_loads = loads.tolist()
        self._n_stores = stores.tolist()
        self._is_loop = is_loop.tolist()
        self._trips = trips.tolist()
        self._taken_target = taken_target.tolist()

    def rebased(self, new_base: int) -> "CodeRegion":
        """Identical region at a different base address (JIT re-emission)."""
        return CodeRegion(new_base, self.size_bytes, self.seed, self.mix)

    @property
    def end(self) -> int:
        return self._pc[-1] + self._n_bytes[-1]

    # ------------------------------------------------------------------
    def walk(self, rng: random.Random, n_instructions: int,
             load_addr, store_addr, is_kernel: bool = False,
             entry: int | None = None):
        """Yield ops for roughly ``n_instructions`` of execution.

        ``load_addr`` / ``store_addr`` are zero-argument callables
        producing data addresses (the data-locality model lives with the
        caller).  ``entry`` selects the starting block (defaults to a
        random one, biased towards the region start — hot entry points).

        Execution walks blocks sequentially; loop blocks repeat with a
        highly-predictable backward branch, and every ~8 blocks control
        transfers to a new spot in the region (call/jump), exercising the
        BTB.  Entries and jump targets concentrate near the region start
        (hot paths): most dynamic execution covers ~10-20% of the static
        blocks, as in real code, so predictors and caches can train on it.
        """
        pcs = self._pc
        n_other = self._n_other
        n_bytes = self._n_bytes
        p_taken = self._p_taken
        n_loads = self._n_loads
        n_stores = self._n_stores
        is_loop = self._is_loop
        trips = self._trips
        taken_target = self._taken_target
        n_blocks = self.n_blocks
        hot_entries = self._hot_entries
        n_hot = len(hot_entries)
        n_chunks = self.n_chunks
        chunk_bytes = self._chunk_bytes
        off = 0                      # current chunk's address offset
        if entry is None:
            i = hot_entries[int(rng.random() ** 3 * n_hot)]
        else:
            i = entry % n_blocks
        executed = 0
        run_len = 0
        while executed < n_instructions:
            reps = trips[i] if is_loop[i] else 1
            for rep in range(reps):
                other = n_other[i]
                if other:
                    yield (OP_BLOCK, pcs[i] + off, other, n_bytes[i],
                           is_kernel)
                for _ in range(n_loads[i]):
                    yield (OP_LOAD, load_addr())
                for _ in range(n_stores[i]):
                    yield (OP_STORE, store_addr())
                executed += other + n_loads[i] + n_stores[i] + 1
                branch_pc = pcs[i] + off + n_bytes[i] - 4
                if rep < reps - 1:
                    # Loop backedge: taken, target = same block.
                    yield (OP_BRANCH, branch_pc, pcs[i] + off, True)
                    continue
                run_len += 1
                if run_len >= 8:
                    # Call/jump: almost always to a hot entry point (in
                    # the home chunk); a small fraction excursions
                    # anywhere in the full region (cold paths).
                    run_len = 0
                    if rng.random() < 0.98:
                        j = hot_entries[int(rng.random() ** 3 * n_hot)]
                        off = 0
                    else:
                        j = int(rng.random() * n_blocks)
                        if n_chunks > 1:
                            off = int(rng.random() * n_chunks) * chunk_bytes
                    yield (OP_BRANCH, branch_pc, pcs[j] + off, True)
                    i = j
                else:
                    taken = rng.random() < p_taken[i]
                    if taken:
                        j = taken_target[i]
                        yield (OP_BRANCH, branch_pc, pcs[j] + off, True)
                        i = j
                    else:
                        nxt = (i + 1) % n_blocks
                        yield (OP_BRANCH, branch_pc, pcs[nxt] + off, False)
                        i = nxt

    def walk_into(self, buf, rng: random.Random, n_instructions: int,
                  load_addr, store_addr, is_kernel: bool = False,
                  entry: int | None = None) -> None:
        """Push twin of :meth:`walk`: emit into a ``TraceBuffer``.

        Identical control flow and RNG call order to :meth:`walk` — the
        two must stay in lockstep so a pushed trace is bit-identical to a
        pulled one.  Pushing onto the buffer's columns directly skips one
        tuple build + one generator resume per op, which is most of the
        generation cost.
        """
        pcs = self._pc
        n_other = self._n_other
        n_bytes = self._n_bytes
        p_taken = self._p_taken
        n_loads = self._n_loads
        n_stores = self._n_stores
        is_loop = self._is_loop
        trips = self._trips
        taken_target = self._taken_target
        n_blocks = self.n_blocks
        hot_entries = self._hot_entries
        n_hot = len(hot_entries)
        n_chunks = self.n_chunks
        chunk_bytes = self._chunk_bytes
        kinds = buf.kinds
        a0 = buf.a0
        a1 = buf.a1
        a2 = buf.a2
        kernel_bit = _KERNEL_BIT if is_kernel else 0
        random_ = rng.random
        off = 0                      # current chunk's address offset
        if entry is None:
            i = hot_entries[int(random_() ** 3 * n_hot)]
        else:
            i = entry % n_blocks
        executed = 0
        run_len = 0
        while executed < n_instructions:
            reps = trips[i] if is_loop[i] else 1
            for rep in range(reps):
                other = n_other[i]
                if other:
                    kinds.append(OP_BLOCK)
                    a0.append(pcs[i] + off)
                    a1.append(other)
                    a2.append(n_bytes[i] | kernel_bit)
                for _ in range(n_loads[i]):
                    kinds.append(OP_LOAD)
                    a0.append(load_addr())
                    a1.append(0)
                    a2.append(0)
                for _ in range(n_stores[i]):
                    kinds.append(OP_STORE)
                    a0.append(store_addr())
                    a1.append(0)
                    a2.append(0)
                executed += other + n_loads[i] + n_stores[i] + 1
                branch_pc = pcs[i] + off + n_bytes[i] - 4
                if rep < reps - 1:
                    # Loop backedge: taken, target = same block.
                    kinds.append(OP_BRANCH)
                    a0.append(branch_pc)
                    a1.append(pcs[i] + off)
                    a2.append(1)
                    continue
                run_len += 1
                if run_len >= 8:
                    run_len = 0
                    if random_() < 0.98:
                        j = hot_entries[int(random_() ** 3 * n_hot)]
                        off = 0
                    else:
                        j = int(random_() * n_blocks)
                        if n_chunks > 1:
                            off = int(random_() * n_chunks) * chunk_bytes
                    kinds.append(OP_BRANCH)
                    a0.append(branch_pc)
                    a1.append(pcs[j] + off)
                    a2.append(1)
                    i = j
                else:
                    taken = random_() < p_taken[i]
                    if taken:
                        j = taken_target[i]
                        kinds.append(OP_BRANCH)
                        a0.append(branch_pc)
                        a1.append(pcs[j] + off)
                        a2.append(1)
                        i = j
                    else:
                        nxt = (i + 1) % n_blocks
                        kinds.append(OP_BRANCH)
                        a0.append(branch_pc)
                        a1.append(pcs[nxt] + off)
                        a2.append(0)
                        i = nxt
        buf.n_instructions += executed
