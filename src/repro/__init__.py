"""repro: reproduction of "Performance Characterization of .NET Benchmarks"
(ISPASS 2021).

Layers (bottom up):

* :mod:`repro.uarch` — microarchitecture simulator (caches, TLBs, branch
  prediction, prefetchers, DRAM, Top-Down pipeline accounting, multicore
  shared-LLC contention);
* :mod:`repro.kernel` — OS model (demand paging, syscalls, network stack);
* :mod:`repro.runtime` — managed-runtime (CLR) model: generational GC with
  compaction, JIT with fresh code pages, runtime events;
* :mod:`repro.workloads` — the benchmark suites: 2906 .NET
  microbenchmarks in 44 categories, 53 ASP.NET benchmarks, SPEC CPU17
  analogs;
* :mod:`repro.perf` — measurement (perf-stat counters, LTTng-style
  tracing, 1 ms co-sampling);
* :mod:`repro.core` — the paper's analysis pipeline: Table I metrics, PCA,
  hierarchical clustering, representative-subset validation, Pearson
  correlation;
* :mod:`repro.harness` — experiment orchestration and text reports.

Quick start::

    from repro import quick_characterize
    result = quick_characterize("System.Runtime")
    print(result.counters.cpi, result.topdown.frontend_bound)
"""

from repro.harness.runner import Fidelity, RunResult, run_workload
from repro.uarch.machine import get_machine

__version__ = "1.0.0"


def quick_characterize(category: str = "System.Runtime",
                       machine: str = "i9",
                       fidelity: Fidelity | None = None) -> RunResult:
    """Characterize one .NET category (or ASP.NET/SPEC benchmark) by name.

    Looks the name up across all three suites; raises ``KeyError`` if it
    is not a known benchmark.
    """
    from repro.workloads.aspnet import aspnet_specs
    from repro.workloads.dotnet import dotnet_category_specs
    from repro.workloads.speccpu import speccpu_specs

    for spec in (dotnet_category_specs() + aspnet_specs()
                 + speccpu_specs()):
        if spec.name == category:
            return run_workload(spec, get_machine(machine), fidelity)
    raise KeyError(f"unknown benchmark {category!r}")


__all__ = ["Fidelity", "RunResult", "run_workload", "get_machine",
           "quick_characterize", "__version__"]
