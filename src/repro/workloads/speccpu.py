"""SPEC CPU17 analog programs.

The 23 distinct SPEC CPU2017 programs, modeled as native
(:class:`~repro.workloads.program.NativeProgram`) workloads with behaviour
profiles set from their published characterizations (Limaye & Adegbija
ISPASS'18 [32]; Panda et al. HPCA'18 [34], both cited by the paper):
memory monsters (mcf, lbm, bwaves) get multi-GB working sets and
streaming/pointer-chasing access; branchy integer codes (xalancbmk,
perlbench, deepsjeng, leela) get high branch fractions with hard-to-predict
biases; FP codes get low branch fractions, long predictable loops and high
ILP/MLP.  SPEC has essentially no kernel interaction and no managed
runtime, which is exactly the contrast the paper draws.
"""

from __future__ import annotations

from repro.workloads.spec import SuiteName, WorkloadSpec

_MB = 1024 * 1024


def _spec17(name: str, **kw) -> WorkloadSpec:
    defaults = dict(
        suite=SuiteName.SPECCPU, category="speccpu", managed=False,
        static_code_bytes=900 * 1024,
        branch_frac=0.18, load_frac=0.35, store_frac=0.11,
        taken_bias=0.5, bias_spread=0.3,
        hot_objects=0, stream_frac=0.1, stack_frac=0.25,
        native_ws_bytes=64 * _MB, hot_skew=2.5,
        allocs_per_kinstr=0.0, churn_per_call=0.0, tiering=False,
        temporal_reuse=0.85, code_concentration=3.0,
        exceptions_per_minstr=0.0, contentions_per_minstr=0.0,
        ilp=2.8, mlp=3.5, microcode_frac=0.001, div_frac=0.001,
        threads=1, cpu_utilization=0.06,
    )
    defaults.update(kw)
    return WorkloadSpec(name=name, **defaults)


#: All 23 distinct SPEC CPU2017 programs.
SPEC_PROGRAMS_TABLE: list[WorkloadSpec] = [
    # ---- integer -------------------------------------------------------
    _spec17("perlbench",
            static_code_bytes=1800 * 1024, branch_frac=0.21,
            load_frac=0.36, store_frac=0.14, bias_spread=0.38,
            native_ws_bytes=180 * _MB, hot_ws_bytes=384 * 1024, cold_frac=0.01,
            fresh_new_frac=0.12, hot_skew=3.2, mlp=2.4),
    _spec17("gcc",
            static_code_bytes=6 * _MB, branch_frac=0.20,
            load_frac=0.34, store_frac=0.13, bias_spread=0.34,
            native_ws_bytes=900 * _MB, hot_ws_bytes=1024 * 1024, cold_frac=0.02,
            fresh_new_frac=0.15, hot_skew=2.8, mlp=2.6),
    _spec17("mcf",
            static_code_bytes=128 * 1024, branch_frac=0.19,
            load_frac=0.40, store_frac=0.09, bias_spread=0.36,
            native_ws_bytes=2200 * _MB, hot_ws_bytes=12 * _MB,
            cold_frac=0.15, fresh_new_frac=0.6, hot_skew=1.4,
            pointer_chase_frac=0.25, stack_frac=0.10, mlp=3.2,
            ilp=1.9, temporal_reuse=0.85),
    _spec17("omnetpp",
            static_code_bytes=1500 * 1024, branch_frac=0.20,
            load_frac=0.37, store_frac=0.13, bias_spread=0.32,
            native_ws_bytes=450 * _MB, hot_ws_bytes=2560 * 1024,
            cold_frac=0.05, fresh_new_frac=0.45, hot_skew=1.9,
            pointer_chase_frac=0.15, mlp=2.6, ilp=2.2,
            temporal_reuse=0.80),
    _spec17("xalancbmk",
            static_code_bytes=3500 * 1024, branch_frac=0.26,
            load_frac=0.35, store_frac=0.08, bias_spread=0.30,
            taken_bias=0.55, native_ws_bytes=220 * _MB, hot_ws_bytes=1024 * 1024,
            cold_frac=0.015, fresh_new_frac=0.10, hot_skew=2.6, mlp=2.4),
    _spec17("x264",
            static_code_bytes=900 * 1024, branch_frac=0.10,
            load_frac=0.38, store_frac=0.12, taken_bias=0.7,
            bias_spread=0.12, stream_frac=0.45,
            stream_bytes=48 * _MB, native_ws_bytes=160 * _MB,
            hot_ws_bytes=512 * 1024, ilp=3.4, mlp=4.8),
    _spec17("deepsjeng",
            static_code_bytes=400 * 1024, branch_frac=0.20,
            load_frac=0.33, store_frac=0.12, bias_spread=0.42,
            taken_bias=0.5, native_ws_bytes=700 * _MB, hot_ws_bytes=768 * 1024,
            cold_frac=0.01, fresh_new_frac=0.12, hot_skew=3.4, ilp=2.4),
    _spec17("leela",
            static_code_bytes=350 * 1024, branch_frac=0.18,
            load_frac=0.33, store_frac=0.11, bias_spread=0.46,
            taken_bias=0.5, native_ws_bytes=60 * _MB, hot_ws_bytes=256 * 1024,
            cold_frac=0.01, fresh_new_frac=0.10, hot_skew=3.0, ilp=2.2),
    _spec17("exchange2",
            static_code_bytes=250 * 1024, branch_frac=0.22,
            load_frac=0.30, store_frac=0.14, taken_bias=0.62,
            bias_spread=0.14, native_ws_bytes=2 * _MB, hot_ws_bytes=128 * 1024,
            cold_frac=0.001, hot_skew=4.0, stack_frac=0.5, ilp=3.2),
    _spec17("xz",
            static_code_bytes=300 * 1024, branch_frac=0.15,
            load_frac=0.36, store_frac=0.12, bias_spread=0.30,
            native_ws_bytes=1400 * _MB, hot_ws_bytes=3 * _MB,
            cold_frac=0.06, fresh_new_frac=0.5, hot_skew=1.8,
            stream_frac=0.25, stream_bytes=64 * _MB, mlp=2.8),
    # ---- floating point -----------------------------------------------
    _spec17("bwaves",
            static_code_bytes=250 * 1024, branch_frac=0.04,
            load_frac=0.44, store_frac=0.09, taken_bias=0.9,
            bias_spread=0.05, loop_frac=0.5, avg_loop_trips=24.0,
            stream_frac=0.7, stream_bytes=256 * _MB,
            native_ws_bytes=1800 * _MB, fp_heavy=True,
            ilp=3.4, mlp=6.0, div_frac=0.004),
    _spec17("cactuBSSN",
            static_code_bytes=2500 * 1024, branch_frac=0.05,
            load_frac=0.42, store_frac=0.13, taken_bias=0.88,
            bias_spread=0.06, loop_frac=0.45, avg_loop_trips=18.0,
            stream_frac=0.5, stream_bytes=160 * _MB,
            native_ws_bytes=1200 * _MB, fp_heavy=True,
            ilp=3.0, mlp=4.6, div_frac=0.003),
    _spec17("namd",
            static_code_bytes=700 * 1024, branch_frac=0.06,
            load_frac=0.38, store_frac=0.10, taken_bias=0.85,
            bias_spread=0.08, stream_frac=0.3, native_ws_bytes=48 * _MB, hot_ws_bytes=384 * 1024,
            fp_heavy=True, ilp=3.5, mlp=4.0),
    _spec17("parest",
            static_code_bytes=1800 * 1024, branch_frac=0.09,
            load_frac=0.40, store_frac=0.10, taken_bias=0.8,
            bias_spread=0.12, stream_frac=0.35,
            native_ws_bytes=400 * _MB, hot_ws_bytes=1536 * 1024, cold_frac=0.03,
            fresh_new_frac=0.2, fp_heavy=True, mlp=3.6),
    _spec17("povray",
            static_code_bytes=1100 * 1024, branch_frac=0.14,
            load_frac=0.35, store_frac=0.11, bias_spread=0.22,
            native_ws_bytes=8 * _MB, hot_ws_bytes=256 * 1024, hot_skew=3.5,
            fp_heavy=True, ilp=3.0, div_frac=0.006),
    _spec17("lbm",
            static_code_bytes=120 * 1024, branch_frac=0.03,
            load_frac=0.43, store_frac=0.16, taken_bias=0.95,
            bias_spread=0.03, loop_frac=0.6, avg_loop_trips=30.0,
            stream_frac=0.85, stream_bytes=400 * _MB,
            native_ws_bytes=420 * _MB, fp_heavy=True,
            ilp=3.2, mlp=7.0),
    _spec17("wrf",
            static_code_bytes=4500 * 1024, branch_frac=0.07,
            load_frac=0.39, store_frac=0.12, taken_bias=0.84,
            bias_spread=0.08, loop_frac=0.4, avg_loop_trips=14.0,
            stream_frac=0.45, stream_bytes=96 * _MB,
            native_ws_bytes=220 * _MB, fp_heavy=True,
            ilp=3.1, mlp=4.2, div_frac=0.004),
    _spec17("blender",
            static_code_bytes=5200 * 1024, branch_frac=0.12,
            load_frac=0.36, store_frac=0.11, bias_spread=0.2,
            native_ws_bytes=500 * _MB, hot_ws_bytes=2 * _MB, cold_frac=0.03,
            fresh_new_frac=0.2, hot_skew=2.4, fp_heavy=True, ilp=2.9, mlp=3.4),
    _spec17("cam4",
            static_code_bytes=4200 * 1024, branch_frac=0.10,
            load_frac=0.38, store_frac=0.12, taken_bias=0.78,
            bias_spread=0.14, stream_frac=0.4,
            native_ws_bytes=700 * _MB, hot_ws_bytes=1536 * 1024, cold_frac=0.03,
            fresh_new_frac=0.2, fp_heavy=True, mlp=3.8),
    _spec17("imagick",
            static_code_bytes=1600 * 1024, branch_frac=0.08,
            load_frac=0.37, store_frac=0.11, taken_bias=0.85,
            bias_spread=0.08, stream_frac=0.4, native_ws_bytes=24 * _MB, hot_ws_bytes=512 * 1024,
            fp_heavy=True, ilp=3.6, mlp=4.4),
    _spec17("nab",
            static_code_bytes=350 * 1024, branch_frac=0.07,
            load_frac=0.36, store_frac=0.10, taken_bias=0.86,
            bias_spread=0.08, native_ws_bytes=32 * _MB, hot_ws_bytes=384 * 1024,
            fp_heavy=True, ilp=3.3, mlp=3.8, div_frac=0.005),
    _spec17("fotonik3d",
            static_code_bytes=800 * 1024, branch_frac=0.04,
            load_frac=0.43, store_frac=0.12, taken_bias=0.92,
            bias_spread=0.04, loop_frac=0.55, avg_loop_trips=26.0,
            stream_frac=0.75, stream_bytes=280 * _MB,
            native_ws_bytes=800 * _MB, fp_heavy=True,
            ilp=3.3, mlp=6.5),
    _spec17("roms",
            static_code_bytes=2100 * 1024, branch_frac=0.06,
            load_frac=0.41, store_frac=0.12, taken_bias=0.88,
            bias_spread=0.06, loop_frac=0.5, avg_loop_trips=20.0,
            stream_frac=0.6, stream_bytes=200 * _MB,
            native_ws_bytes=600 * _MB, fp_heavy=True, mlp=5.5),
]

SPEC_PROGRAMS: tuple[str, ...] = tuple(s.name for s in SPEC_PROGRAMS_TABLE)

#: The paper's Table IV SPEC CPU17 subset.
TABLE4_SPEC_SUBSET = ("mcf", "cactuBSSN", "wrf", "gcc", "omnetpp",
                      "perlbench", "xalancbmk", "bwaves")


def speccpu_specs(subset_only: bool = False) -> list[WorkloadSpec]:
    """SPEC CPU17 program specs.

    ``subset_only=True`` returns just the paper's Table IV subset — the
    set actually characterized in Figs 3-10.
    """
    if subset_only:
        by_name = {s.name: s for s in SPEC_PROGRAMS_TABLE}
        return [by_name[n] for n in TABLE4_SPEC_SUBSET]
    return list(SPEC_PROGRAMS_TABLE)
