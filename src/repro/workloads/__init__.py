"""Benchmark suite models: .NET microbenchmarks, ASP.NET, SPEC CPU17.

Every workload is a :class:`repro.workloads.spec.WorkloadSpec` — a
behaviour profile — executed by :class:`repro.workloads.program` machinery
into a trace-op stream.  Registries:

* :mod:`repro.workloads.dotnet` — 44 categories / 2906 microbenchmarks;
* :mod:`repro.workloads.aspnet` — 53 server benchmarks;
* :mod:`repro.workloads.speccpu` — SPEC CPU17 analogs.
"""

from repro.workloads.spec import WorkloadSpec, SuiteName
from repro.workloads.program import ManagedProgram, NativeProgram, build_program
from repro.workloads.dotnet import (DOTNET_CATEGORIES, dotnet_category_specs,
                                    dotnet_workloads)
from repro.workloads.aspnet import ASPNET_BENCHMARKS, aspnet_specs
from repro.workloads.speccpu import SPEC_PROGRAMS, speccpu_specs

__all__ = [
    "WorkloadSpec", "SuiteName",
    "ManagedProgram", "NativeProgram", "build_program",
    "DOTNET_CATEGORIES", "dotnet_category_specs", "dotnet_workloads",
    "ASPNET_BENCHMARKS", "aspnet_specs",
    "SPEC_PROGRAMS", "speccpu_specs",
]
