"""Workload behaviour profiles.

A :class:`WorkloadSpec` captures everything that differentiates one
benchmark from another in this model: code shape (footprint, method count,
instruction mix, branch statistics), data shape (hot-set size and skew,
streaming share, native working set), managed-runtime behaviour
(allocation rate, long-lived churn, exceptions, contention) and OS
interaction (syscall mix).  The simulator turns these into op streams; the
characterization pipeline never reads the spec — it only sees counters,
exactly as the paper's `perf`-based methodology only saw the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codegen import MixProfile
from repro.uarch.pipeline import WorkloadHints


class SuiteName:
    """Canonical suite identifiers."""

    DOTNET = "dotnet"
    ASPNET = "aspnet"
    SPECCPU = "speccpu"

    ALL = (DOTNET, ASPNET, SPECCPU)


@dataclass(frozen=True)
class WorkloadSpec:
    """Behaviour profile of one benchmark.

    Rates are expressed per 1000 instructions ("kinstr") or per million
    instructions ("minstr") of *user* work, so they remain meaningful when
    a run's length changes with fidelity.
    """

    name: str
    suite: str
    category: str = ""
    managed: bool = True

    # --- code shape ------------------------------------------------------
    n_methods: int = 120
    method_size_mean: int = 480          # bytes of emitted code
    static_code_bytes: int = 64 * 1024   # AOT/native code footprint
    branch_frac: float = 0.16
    load_frac: float = 0.28
    store_frac: float = 0.15
    taken_bias: float = 0.45
    bias_spread: float = 0.35            # branch predictability spread
    loop_frac: float = 0.12
    avg_loop_trips: float = 6.0
    #: multiplier on the hot-path concentration of generated code
    #: (1.0 = managed-style method soup; >1 = loopier, denser hot paths)
    code_concentration: float = 1.0
    call_chain_depth: int = 4            # methods touched per work item
    work_item_instructions: int = 3200   # user instructions per work item
    #: zipf skew of method selection: lower = flatter = more distinct
    #: methods touched per interval = larger I-side footprint
    method_skew: float = 2.2

    # --- data shape --------------------------------------------------------
    hot_objects: int = 3000              # long-lived set size
    object_slot: int = 64
    hot_skew: float = 3.0                # higher = more concentrated
    stream_frac: float = 0.10            # loads from sequential streams
    stream_bytes: int = 256 * 1024       # streaming buffer span
    stack_frac: float = 0.30             # loads/stores hitting the stack
    native_ws_bytes: int = 0             # native (non-managed) working set
    #: resident hot region of the native working set (two-tier model:
    #: most fresh draws land here; ``cold_frac`` of them sweep the full WS)
    hot_ws_bytes: int = 4 * 1024 * 1024
    cold_frac: float = 0.02
    pointer_chase_frac: float = 0.0      # loads serialized (MLP = 1)
    #: probability a memory op re-touches a recently used address (field
    #: access bursts) — the temporal-locality knob behind L1 hit rates
    temporal_reuse: float = 0.82
    #: of non-burst draws, the fraction sampling the *global* distribution
    #: (deep stack distances -> LLC/DRAM); the rest revisit the warm and
    #: episode recency windows (L2 / LLC stack distances respectively)
    fresh_new_frac: float = 0.25
    #: live bytes beyond the modeled hot set (cold gen2 data): counted for
    #: heap sizing / OOM checks (§VII-B) but not touched by the hot loop
    cold_live_bytes: int = 0

    # --- managed runtime -----------------------------------------------
    allocs_per_kinstr: float = 2.0
    alloc_size_mean: int = 56
    churn_per_call: float = 0.5          # long-lived objects churned / call
    tiering: bool = True
    prejit_frac: float = 0.65            # ReadyToRun-precompiled share
    exceptions_per_minstr: float = 2.0
    contentions_per_minstr: float = 1.0

    # --- OS interaction ---------------------------------------------------
    syscalls_per_kinstr: float = 0.0
    syscall_mix: tuple[tuple[str, float], ...] = ()
    syscall_payload_bytes: int = 512

    # --- request-loop shape (ASP.NET only) -----------------------------
    request_bytes: int = 0
    response_bytes: int = 0
    db_queries_per_request: int = 0
    db_response_bytes: int = 2048

    # --- execution hints -------------------------------------------------
    ilp: float = 2.6
    mlp: float = 3.0
    uop_factor: float = 1.12
    microcode_frac: float = 0.004
    div_frac: float = 0.002
    fp_heavy: bool = False
    threads: int = 1
    cpu_utilization: float = 1.0

    # ------------------------------------------------------------------
    def mix_profile(self, bytes_per_instr: float = 4.2) -> MixProfile:
        """Instruction-mix profile for this workload's generated code."""
        return MixProfile(
            branch_frac=self.branch_frac,
            load_frac=self.load_frac,
            store_frac=self.store_frac,
            bytes_per_instr=bytes_per_instr,
            taken_bias=self.taken_bias,
            bias_spread=self.bias_spread,
            loop_frac=self.loop_frac,
            avg_loop_trips=self.avg_loop_trips,
            hot_entry_divisor=int(2000 * self.code_concentration),
        )

    def hints(self) -> WorkloadHints:
        mlp = self.mlp
        if self.pointer_chase_frac > 0:
            # Serialized dependent loads pull effective MLP down.
            mlp = max(1.05, mlp * (1.0 - 0.8 * self.pointer_chase_frac))
        return WorkloadHints(
            ilp=self.ilp, mlp=mlp, uop_factor=self.uop_factor,
            microcode_frac=self.microcode_frac, div_frac=self.div_frac,
            cpu_utilization=self.cpu_utilization)

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}/{self.name}"

    @property
    def long_lived_bytes(self) -> int:
        return self.hot_objects * self.object_slot

    def varied(self, rng, jitter: float = 0.25, **overrides) -> "WorkloadSpec":
        """A per-workload variant of a category template.

        Scales the size/rate fields by lognormal-ish factors drawn from
        ``rng``, keeping fractions and flags; used to expand one category
        into its individual microbenchmarks.
        """
        def scale(value, lo=0.3, hi=3.5):
            factor = max(lo, min(hi, rng.lognormvariate(0.0, jitter)))
            return value * factor

        fields = dict(
            n_methods=max(4, int(scale(self.n_methods))),
            method_size_mean=max(64, int(scale(self.method_size_mean))),
            hot_objects=max(16, int(scale(self.hot_objects))),
            stream_bytes=max(4096, int(scale(self.stream_bytes))),
            allocs_per_kinstr=scale(self.allocs_per_kinstr),
            churn_per_call=scale(self.churn_per_call),
            exceptions_per_minstr=scale(self.exceptions_per_minstr),
            contentions_per_minstr=scale(self.contentions_per_minstr),
            syscalls_per_kinstr=scale(self.syscalls_per_kinstr),
            work_item_instructions=max(400,
                                       int(scale(self.work_item_instructions))),
            taken_bias=min(0.95, max(0.05,
                                     self.taken_bias
                                     + (rng.random() - 0.5) * 0.2)),
            mlp=max(1.1, scale(self.mlp, 0.6, 1.8)),
            ilp=max(1.2, min(4.0, scale(self.ilp, 0.7, 1.5))),
        )
        fields.update(overrides)
        return replace(self, **fields)
