"""Synthetic program execution: turns a WorkloadSpec into a trace-op stream.

Two program families:

* :class:`ManagedProgram` — runs on the CLR model: methods are JITed on
  first call and re-tiered when hot, allocation feeds the GC, and data
  accesses go through the (compaction-sensitive) managed heap.  .NET
  microbenchmarks and ASP.NET servers are both managed programs; ASP.NET
  adds a request/response kernel-interaction loop
  (:class:`AspNetProgram`).
* :class:`NativeProgram` — SPEC-style: one static code image, no runtime
  events, data in a pre-faulted native working set.

Programs yield an *infinite* op stream (:meth:`ops`); the harness bounds
execution by instruction count at the consuming side.
"""

from __future__ import annotations

import random

from repro.codegen import CodeRegion
from repro.kernel.syscalls import SyscallKind, SyscallModel
from repro.runtime.clr import Clr, ClrImage, shared_clr_image
from repro.runtime.gc import GcConfig
from repro.runtime.heap import HeapConfig
from repro.runtime.jit import Method
from repro.seeding import stable_seed
from repro.trace import (OP_EVENT, EV_REQUEST_DONE,
                         REGION_CODE_BASE, REGION_STACK_BASE)
from repro.workloads.spec import SuiteName, WorkloadSpec

_LINE = 64


class DataModel:
    """Data-address generators implementing the spec's locality profile.

    ``load_addr``/``store_addr`` are the callables handed to
    :meth:`repro.codegen.CodeRegion.walk`; they sample the stack, the
    streaming buffers, the native working set and (for managed programs)
    the live object set according to the spec's fractions.
    """

    STACK_BYTES = 4 * 1024

    def __init__(self, spec: WorkloadSpec, rng: random.Random,
                 live_addrs: list[int] | None,
                 native_base: int, stream_base: int) -> None:
        self.spec = spec
        self.rng = rng
        self.live_addrs = live_addrs
        self.native_base = native_base
        self.stream_base = stream_base
        self._stream_cursor = 0
        self._stream_span = max(_LINE, spec.stream_bytes)
        self._native_pages = max(1, spec.native_ws_bytes // 4096)
        self._hot_pages = max(1, min(spec.hot_ws_bytes,
                                     spec.native_ws_bytes or
                                     spec.hot_ws_bytes) // 4096)
        self._stack_lines = self.STACK_BYTES // _LINE
        self._slot_lines = max(1, spec.object_slot // _LINE)
        # Stack-distance cascade.  Real access streams are dominated by
        # short stack distances; three recency tiers model that:
        #   ring0 (burst, ~6 addrs)      -> L1 hits
        #   ring1 (warm, ~400 addrs)     -> L2-distance revisits
        #   ring2 (episode, ~6000 addrs) -> LLC-distance revisits
        # Only ``fresh_new_frac`` of non-burst draws sample the global
        # distribution (deep distances: compulsory / DRAM).
        self._recent: list[int] = []
        self._recent_cap = 6
        self._warm: list[int] = []
        self._warm_cap = 400
        self._warm_idx = 0
        self._episode: list[int] = []
        self._episode_cap = 6000
        self._episode_idx = 0

    # -- individual generators -------------------------------------------
    def stack_addr(self) -> int:
        # Strong locality: geometric concentration near the stack top.
        r = self.rng.random()
        line = int(r * r * self._stack_lines)
        return REGION_STACK_BASE + line * _LINE

    def stream_addr(self) -> int:
        # 8-byte stride: eight consecutive reads share a line, so streams
        # mostly hit L1 and train the L2 stream prefetcher.
        self._stream_cursor = (self._stream_cursor + 8) % self._stream_span
        return self.stream_base + self._stream_cursor

    def hot_object_addr(self) -> int:
        addrs = self.live_addrs
        idx = int(len(addrs) * self.rng.random() ** self.spec.hot_skew)
        base = addrs[idx]
        if self._slot_lines > 1:
            base += int(self.rng.random() * self._slot_lines) * _LINE
        return base

    def native_addr(self, uniform: bool = False) -> int:
        """Two-tier page-then-line sampling of the native working set.

        Hot draws concentrate (zipf-like) on a resident hot region; a
        ``cold_frac`` minority sweeps the full working set (capacity /
        compulsory misses).  Sampling the *page* first and the line within
        it second keeps pages hot even when lines are spread — real
        working sets are page-dense, which is what keeps SPEC dTLB rates
        sane while its caches still miss.
        """
        rng = self.rng
        if uniform or rng.random() < self.spec.cold_frac:
            page = int(rng.random() * self._native_pages)
        else:
            page = int(rng.random() ** self.spec.hot_skew * self._hot_pages)
        return (self.native_base + page * 4096
                + int(rng.random() * 64) * _LINE)

    def _remember(self, addr: int) -> int:
        recent = self._recent
        if len(recent) >= self._recent_cap:
            recent.pop(0)
        recent.append(addr)
        warm = self._warm
        if len(warm) < self._warm_cap:
            warm.append(addr)
        else:
            warm[self._warm_idx] = addr
            self._warm_idx = (self._warm_idx + 1) % self._warm_cap
        episode = self._episode
        if len(episode) < self._episode_cap:
            episode.append(addr)
        else:
            episode[self._episode_idx] = addr
            self._episode_idx = (self._episode_idx + 1) % self._episode_cap
        return addr

    def _fresh_load(self) -> int:
        s = self.spec
        rng = self.rng
        r = rng.random()
        if r < s.stack_frac:
            return self.stack_addr()
        # Recency-tier revisits before any genuinely new sample.
        if rng.random() >= s.fresh_new_frac:
            if self._warm and rng.random() < 0.6:
                return self._warm[int(rng.random() * len(self._warm))]
            if self._episode:
                return self._episode[int(rng.random()
                                         * len(self._episode))]
        r = rng.random()
        if s.pointer_chase_frac and r < s.pointer_chase_frac:
            return self.native_addr(uniform=True)
        if self.live_addrs is not None:
            return self._remember(self.hot_object_addr())
        return self._remember(self.native_addr())

    # -- the mixture entry points -----------------------------------------
    def load_addr(self) -> int:
        rng = self.rng
        s = self.spec
        # Streaming loads keep their own (sequential) locality and bypass
        # the reuse ring — they are the stream share of *all* loads.
        if s.stream_frac and rng.random() < s.stream_frac:
            return self.stream_addr()
        recent = self._recent
        if recent and rng.random() < s.temporal_reuse:
            return recent[int(rng.random() * len(recent))]
        return self._fresh_load()

    def store_addr(self) -> int:
        s = self.spec
        recent = self._recent
        if recent and self.rng.random() < s.temporal_reuse:
            return recent[int(self.rng.random() * len(recent))]
        # Fresh stores skew further towards the stack (spills, locals).
        if self.rng.random() < min(0.9, s.stack_frac * 1.6):
            return self.stack_addr()
        if self.live_addrs is not None:
            return self._remember(self.hot_object_addr())
        return self._remember(self.native_addr())


class NativeProgram:
    """A SPEC-CPU-style native program (no managed runtime)."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0,
                 code_bloat: float = 1.0) -> None:
        self.spec = spec
        self.rng = random.Random(stable_seed(seed, spec.qualified_name))
        code_bytes = int(spec.static_code_bytes * code_bloat)
        self.code = CodeRegion(REGION_CODE_BASE, code_bytes,
                               seed=stable_seed(seed, spec.name, "code"),
                               mix=spec.mix_profile())
        native_base = REGION_STACK_BASE + 0x100000
        stream_base = native_base + max(spec.native_ws_bytes, _LINE)
        self.data = DataModel(spec, self.rng, live_addrs=None,
                              native_base=native_base,
                              stream_base=stream_base)
        self._native_span = (native_base,
                             max(spec.native_ws_bytes, _LINE)
                             + spec.stream_bytes + 0x100000)

    def premap_ranges(self) -> list[tuple[int, int]]:
        """(start, length) ranges faulted in before execution.

        Recorded in trace metadata so a replayed trace can reconstruct
        the same initial VM state without rebuilding the program.
        """
        start, length = self._native_span
        return [(start, length),
                (REGION_CODE_BASE, self.code.size_bytes),
                (REGION_STACK_BASE, DataModel.STACK_BYTES)]

    def premap(self, vm) -> None:
        """Fault in the working set (SPEC initializes its data at startup,
        outside the measurement window)."""
        for start, length in self.premap_ranges():
            vm.premap_range(start, length)

    def ops(self):
        """Infinite op stream."""
        rng = self.rng
        data = self.data
        while True:
            yield from self.code.walk(rng, 4096,
                                      load_addr=data.load_addr,
                                      store_addr=data.store_addr)

    def fill_buffer(self, buf, n_instructions: int) -> bool:
        """Push ~``n_instructions`` of ops into ``buf`` (never exhausts).

        The batched twin of :meth:`ops` — same RNG call order, so the op
        sequence is identical; only chunk boundaries differ (pushes stop
        at walk-segment granularity instead of mid-segment).
        """
        rng = self.rng
        data = self.data
        walk_into = self.code.walk_into
        target = buf.n_instructions + n_instructions
        while buf.n_instructions < target:
            walk_into(buf, rng, 4096,
                      load_addr=data.load_addr,
                      store_addr=data.store_addr)
        return False


class ManagedProgram:
    """A .NET program running on the CLR model."""

    #: user instructions per method call in a work item's call chain
    def __init__(self, spec: WorkloadSpec, seed: int = 0,
                 heap_config: HeapConfig | None = None,
                 gc_config: GcConfig | None = None,
                 clr_image: ClrImage | None = None,
                 syscalls: SyscallModel | None = None,
                 code_bloat: float = 1.0,
                 reuse_code_pages: bool = False,
                 compaction_enabled: bool = True) -> None:
        self.spec = spec
        base_seed = stable_seed(seed, spec.qualified_name)
        self.rng = random.Random(base_seed)
        # The kernel image is the same for every process (seed 0); only
        # buffer-pool state is per-program.
        self.syscalls = syscalls or SyscallModel()
        image = clr_image or shared_clr_image(code_bloat=code_bloat)
        heap_config = heap_config or HeapConfig()
        gc_config = gc_config or GcConfig(
            max_heap_bytes=heap_config.max_heap_bytes)
        self.clr = Clr(
            image, heap_config, gc_config,
            long_lived_count=spec.hot_objects,
            long_lived_slot=spec.object_slot,
            cold_live_bytes=spec.cold_live_bytes,
            churn_per_call=spec.churn_per_call,
            tiering=spec.tiering,
            reuse_code_pages=reuse_code_pages,
            compaction_enabled=compaction_enabled,
            code_bloat=code_bloat,
            syscalls=self.syscalls,
            seed=base_seed ^ 0xC14,
        )
        mix = spec.mix_profile(bytes_per_instr=4.6)   # JIT code is less dense
        for mid in range(spec.n_methods):
            size = max(96, int(self.rng.lognormvariate(0, 0.6)
                               * spec.method_size_mean))
            method = Method(
                id=mid, size_bytes=size,
                seed=stable_seed(base_seed, "m", mid), mix=mix)
            self.clr.register_method(method)
            # ReadyToRun: most framework methods ship precompiled.
            if self.rng.random() < spec.prejit_frac:
                self.clr.jit.precompile(method)
        stream_base = REGION_STACK_BASE + 0x400000
        self.data = DataModel(spec, self.rng,
                              live_addrs=self.clr.live_set.addrs,
                              native_base=stream_base,
                              stream_base=stream_base)
        # Rate accumulators (events per work item may be < 1).
        self._acc = {"alloc": 0.0, "sys": 0.0, "exc": 0.0, "con": 0.0}

    # ------------------------------------------------------------------
    def _pick_method(self) -> Method:
        n = self.spec.n_methods
        idx = int(n * self.rng.random() ** self.spec.method_skew)
        return self.clr.get_method(min(idx, n - 1))

    def _take(self, key: str, per_item: float) -> int:
        self._acc[key] += per_item
        n = int(self._acc[key])
        self._acc[key] -= n
        return n

    def _call_chain(self, budget: int):
        """Execute a chain of method calls totalling ~``budget`` instrs."""
        spec = self.spec
        depth = max(1, spec.call_chain_depth)
        per_method = max(60, budget // depth)
        rng = self.rng
        data = self.data
        for _ in range(depth):
            method = self._pick_method()
            yield from self.clr.enter_method(method)
            yield from method.region.walk(
                rng, per_method,
                load_addr=data.load_addr, store_addr=data.store_addr)

    def _work_item(self):
        spec = self.spec
        wi = spec.work_item_instructions
        n_alloc = self._take("alloc", spec.allocs_per_kinstr * wi / 1000)
        if n_alloc:
            yield from self.clr.allocate_batch(n_alloc,
                                               spec.alloc_size_mean)
        n_sys = self._take("sys", spec.syscalls_per_kinstr * wi / 1000)
        for _ in range(n_sys):
            yield from self._emit_syscall()
        yield from self._call_chain(wi)
        if self._take("exc", spec.exceptions_per_minstr * wi / 1e6):
            yield from self.clr.throw_exception()
        if self._take("con", spec.contentions_per_minstr * wi / 1e6):
            yield from self.clr.contend_lock()

    def _emit_syscall(self):
        spec = self.spec
        if not spec.syscall_mix:
            return
        r = self.rng.random() * sum(w for _, w in spec.syscall_mix)
        for kind, weight in spec.syscall_mix:
            r -= weight
            if r <= 0:
                break
        yield from self.syscalls.emit(kind, self.rng,
                                      payload_bytes=spec.syscall_payload_bytes,
                                      user_buffer=REGION_STACK_BASE + 0x8000)

    def premap_ranges(self) -> list[tuple[int, int]]:
        """Static data ranges faulted in before execution (see
        :meth:`NativeProgram.premap_ranges`)."""
        return [(REGION_STACK_BASE, DataModel.STACK_BYTES),
                (self.data.stream_base, self.spec.stream_bytes)]

    def premap(self, vm) -> None:
        """Fault in static data regions only (managed code/heap faults are
        part of the phenomenon being measured)."""
        for start, length in self.premap_ranges():
            vm.premap_range(start, length)

    def ops(self):
        """Infinite op stream of work items."""
        while True:
            yield from self._work_item()

    # -- push twins (batched emission) ----------------------------------
    def _call_chain_into(self, buf, budget: int) -> None:
        spec = self.spec
        depth = max(1, spec.call_chain_depth)
        per_method = max(60, budget // depth)
        rng = self.rng
        data = self.data
        for _ in range(depth):
            method = self._pick_method()
            self.clr.enter_method_into(buf, method)
            method.region.walk_into(
                buf, rng, per_method,
                load_addr=data.load_addr, store_addr=data.store_addr)

    def _work_item_into(self, buf) -> None:
        spec = self.spec
        wi = spec.work_item_instructions
        n_alloc = self._take("alloc", spec.allocs_per_kinstr * wi / 1000)
        if n_alloc:
            self.clr.allocate_batch_into(buf, n_alloc,
                                         spec.alloc_size_mean)
        n_sys = self._take("sys", spec.syscalls_per_kinstr * wi / 1000)
        for _ in range(n_sys):
            self._emit_syscall_into(buf)
        self._call_chain_into(buf, wi)
        if self._take("exc", spec.exceptions_per_minstr * wi / 1e6):
            buf.extend(self.clr.throw_exception())
        if self._take("con", spec.contentions_per_minstr * wi / 1e6):
            buf.extend(self.clr.contend_lock())

    def _emit_syscall_into(self, buf) -> None:
        spec = self.spec
        if not spec.syscall_mix:
            return
        r = self.rng.random() * sum(w for _, w in spec.syscall_mix)
        for kind, weight in spec.syscall_mix:
            r -= weight
            if r <= 0:
                break
        self.syscalls.emit_into(buf, kind, self.rng,
                                payload_bytes=spec.syscall_payload_bytes,
                                user_buffer=REGION_STACK_BASE + 0x8000)

    def fill_buffer(self, buf, n_instructions: int) -> bool:
        """Push ~``n_instructions`` of work items into ``buf``.

        Same RNG call order as :meth:`ops`; chunk boundaries land on
        work-item boundaries instead of mid-item.  Never exhausts.
        """
        target = buf.n_instructions + n_instructions
        while buf.n_instructions < target:
            self._work_item_into(buf)
        return False


class AspNetProgram(ManagedProgram):
    """ASP.NET server: each work item is one HTTP request.

    Request lifecycle (§II-B's server component): ``epoll_wait`` →
    ``recv`` the request → parse/dispatch (method calls) → optional DB
    round-trips (``send``/``recv`` on the DB socket) → serialize →
    ``send`` the response, chunked at 64 KiB.
    """

    CHUNK = 64 * 1024

    def _work_item(self):
        spec = self.spec
        rng = self.rng
        sysm = self.syscalls
        ubuf = REGION_STACK_BASE + 0x8000
        yield from sysm.emit(SyscallKind.EPOLL_WAIT, rng)
        # Large uploads arrive in chunks interleaved with parsing.
        remaining = max(spec.request_bytes, 1)
        recv_chunks = max(1, (remaining + self.CHUNK - 1) // self.CHUNK)
        n_alloc = self._take("alloc", spec.allocs_per_kinstr
                             * spec.work_item_instructions / 1000)
        parse_budget = int(spec.work_item_instructions
                           * (0.5 if recv_chunks > 1 else 0.0))
        for _ in range(recv_chunks):
            chunk = min(self.CHUNK, remaining)
            yield from sysm.emit(SyscallKind.RECV, rng, payload_bytes=chunk,
                                 user_buffer=ubuf)
            remaining -= chunk
            if recv_chunks > 1:
                yield from self._call_chain(parse_budget // recv_chunks)
        # App logic: managed method calls + allocation.
        if n_alloc:
            yield from self.clr.allocate_batch(n_alloc, spec.alloc_size_mean)
        send_chunks = max(1, (spec.response_bytes + self.CHUNK - 1)
                          // self.CHUNK)
        app_budget = spec.work_item_instructions - parse_budget
        serialize_budget = (int(app_budget * 0.55) if send_chunks > 1 else 0)
        # Big responses serialize through a Large-Object-Heap buffer,
        # recycled across requests via the LOH free list (like real
        # ASP.NET's ArrayPool/PipeWriter buffers).
        loh_buffer = None
        if send_chunks > 1:
            loh_size = min(spec.response_bytes, self.CHUNK)
            yield from self.clr.alloc_large(loh_size)
            loh_buffer = (self.clr._last_loh[0], loh_size)
        yield from self._call_chain(app_budget - serialize_budget)
        for _ in range(spec.db_queries_per_request):
            yield from sysm.emit(SyscallKind.SEND, rng, payload_bytes=256,
                                 user_buffer=ubuf)
            yield from sysm.emit(SyscallKind.RECV, rng,
                                 payload_bytes=spec.db_response_bytes,
                                 user_buffer=ubuf)
        # Responses stream out chunk by chunk, serialization interleaved;
        # large responses send from the LOH buffer.
        remaining = spec.response_bytes
        send_buf = loh_buffer[0] if loh_buffer else ubuf
        while remaining > 0:
            chunk = min(self.CHUNK, remaining)
            if send_chunks > 1:
                yield from self._call_chain(serialize_budget // send_chunks)
            yield from sysm.emit(SyscallKind.SEND, rng, payload_bytes=chunk,
                                 user_buffer=send_buf)
            remaining -= chunk
        if loh_buffer is not None:
            self.clr.free_large(*loh_buffer)
        if self._take("exc", spec.exceptions_per_minstr
                      * spec.work_item_instructions / 1e6):
            yield from self.clr.throw_exception()
        if self._take("con", spec.contentions_per_minstr
                      * spec.work_item_instructions / 1e6):
            yield from self.clr.contend_lock()
        yield (OP_EVENT, EV_REQUEST_DONE, None)

    def _work_item_into(self, buf) -> None:
        """Push twin of :meth:`_work_item` — same ops, same RNG order."""
        spec = self.spec
        rng = self.rng
        sysm = self.syscalls
        ubuf = REGION_STACK_BASE + 0x8000
        sysm.emit_into(buf, SyscallKind.EPOLL_WAIT, rng)
        remaining = max(spec.request_bytes, 1)
        recv_chunks = max(1, (remaining + self.CHUNK - 1) // self.CHUNK)
        n_alloc = self._take("alloc", spec.allocs_per_kinstr
                             * spec.work_item_instructions / 1000)
        parse_budget = int(spec.work_item_instructions
                           * (0.5 if recv_chunks > 1 else 0.0))
        for _ in range(recv_chunks):
            chunk = min(self.CHUNK, remaining)
            sysm.emit_into(buf, SyscallKind.RECV, rng, payload_bytes=chunk,
                           user_buffer=ubuf)
            remaining -= chunk
            if recv_chunks > 1:
                self._call_chain_into(buf, parse_budget // recv_chunks)
        if n_alloc:
            self.clr.allocate_batch_into(buf, n_alloc, spec.alloc_size_mean)
        send_chunks = max(1, (spec.response_bytes + self.CHUNK - 1)
                          // self.CHUNK)
        app_budget = spec.work_item_instructions - parse_budget
        serialize_budget = (int(app_budget * 0.55) if send_chunks > 1 else 0)
        loh_buffer = None
        if send_chunks > 1:
            loh_size = min(spec.response_bytes, self.CHUNK)
            buf.extend(self.clr.alloc_large(loh_size))
            loh_buffer = (self.clr._last_loh[0], loh_size)
        self._call_chain_into(buf, app_budget - serialize_budget)
        for _ in range(spec.db_queries_per_request):
            sysm.emit_into(buf, SyscallKind.SEND, rng, payload_bytes=256,
                           user_buffer=ubuf)
            sysm.emit_into(buf, SyscallKind.RECV, rng,
                           payload_bytes=spec.db_response_bytes,
                           user_buffer=ubuf)
        remaining = spec.response_bytes
        send_buf = loh_buffer[0] if loh_buffer else ubuf
        while remaining > 0:
            chunk = min(self.CHUNK, remaining)
            if send_chunks > 1:
                self._call_chain_into(buf, serialize_budget // send_chunks)
            sysm.emit_into(buf, SyscallKind.SEND, rng, payload_bytes=chunk,
                           user_buffer=send_buf)
            remaining -= chunk
        if loh_buffer is not None:
            self.clr.free_large(*loh_buffer)
        if self._take("exc", spec.exceptions_per_minstr
                      * spec.work_item_instructions / 1e6):
            buf.extend(self.clr.throw_exception())
        if self._take("con", spec.contentions_per_minstr
                      * spec.work_item_instructions / 1e6):
            buf.extend(self.clr.contend_lock())
        buf.event(EV_REQUEST_DONE, None)


def build_program(spec: WorkloadSpec, seed: int = 0, *,
                  heap_config: HeapConfig | None = None,
                  gc_config: GcConfig | None = None,
                  code_bloat: float = 1.0,
                  reuse_code_pages: bool = False,
                  compaction_enabled: bool = True):
    """Instantiate the right program family for ``spec``."""
    if not spec.managed:
        return NativeProgram(spec, seed=seed, code_bloat=code_bloat)
    cls = AspNetProgram if spec.suite == SuiteName.ASPNET else ManagedProgram
    return cls(spec, seed=seed, heap_config=heap_config,
               gc_config=gc_config, code_bloat=code_bloat,
               reuse_code_pages=reuse_code_pages,
               compaction_enabled=compaction_enabled)
