"""The ASP.NET benchmark suite model: 53 server benchmarks (§II-B).

Modeled after ``aspnet/Benchmarks`` (commit fa417157): TechEmpower-style
scenarios (Plaintext, Json, Fortunes, query/update batteries) plus MVC
variants and payload-size sweeps.  Each benchmark is an
:class:`~repro.workloads.program.AspNetProgram` request loop; the client,
database and benchmark driver of the four-component setup are modeled by
the request/DB parameters (what the *server* — the measured machine —
sees), matching the paper's measurement setup where all counters were
collected on the server machine.

The eight Table IV representatives are modeled individually; the remaining
benchmarks are systematic variants, as in the real suite (same app
skeleton, different backend/payload/pipeline settings).
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.spec import SuiteName, WorkloadSpec


def _aspnet(name: str, **kw) -> WorkloadSpec:
    defaults = dict(
        suite=SuiteName.ASPNET, category="aspnet", managed=True,
        # A full web framework: large, diverse code footprint.
        n_methods=2200, method_size_mean=540,
        branch_frac=0.16, load_frac=0.29, store_frac=0.16,
        taken_bias=0.45, bias_spread=0.22,
        hot_objects=5000, object_slot=32, hot_skew=1.7,
        fresh_new_frac=0.15,
        stream_frac=0.10, stack_frac=0.30,
        allocs_per_kinstr=6.0, churn_per_call=0.35,
        temporal_reuse=0.89, method_skew=1.4,
        exceptions_per_minstr=6.0, contentions_per_minstr=12.0,
        call_chain_depth=9, work_item_instructions=9000,
        request_bytes=512, response_bytes=1024,
        db_queries_per_request=0,
        ilp=2.5, mlp=2.8, microcode_frac=0.007, div_frac=0.001,
        threads=16, cpu_utilization=0.85,
    )
    defaults.update(kw)
    return WorkloadSpec(name=name, **defaults)


#: The eight Table IV representatives, modeled from their descriptions.
_NAMED: list[WorkloadSpec] = [
    _aspnet("DbFortunesRaw",
            # "Renders sorted DB query results to HTML."
            db_queries_per_request=1, db_response_bytes=4096,
            response_bytes=1500, work_item_instructions=16000,
            allocs_per_kinstr=4.2),
    _aspnet("MvcDbFortunesRaw",
            # Fortunes through the MVC pipeline: more framework code.
            db_queries_per_request=1, db_response_bytes=4096,
            response_bytes=1500, work_item_instructions=26000,
            n_methods=3000, call_chain_depth=13, allocs_per_kinstr=4.6),
    _aspnet("MvcDbMultiUpdateRaw",
            # "Serializes multiple DB queries as JSON objects."
            db_queries_per_request=20, db_response_bytes=1024,
            response_bytes=4096, work_item_instructions=30000,
            n_methods=3000, call_chain_depth=13, allocs_per_kinstr=5.0,
            store_frac=0.17),
    _aspnet("Plaintext",
            # "Returns plaintext strings from pipelined queries": minimal
            # user work, the kernel/networking share dominates.
            request_bytes=2048,           # 16 pipelined requests/read
            response_bytes=2096, work_item_instructions=3600,
            n_methods=1200, call_chain_depth=5, allocs_per_kinstr=1.2,
            churn_per_call=0.15, hot_objects=2000),
    _aspnet("Json",
            # "Serializes a simple JSON document."
            response_bytes=256, work_item_instructions=6500,
            n_methods=1400, call_chain_depth=6, allocs_per_kinstr=3.0,
            hot_objects=2600),
    _aspnet("CopyToAsync",
            # "Reads POST query, returns plaintext result."
            request_bytes=1024 * 1024, response_bytes=128,
            work_item_instructions=9000, allocs_per_kinstr=2.0,
            stream_frac=0.2, mlp=4.0),
    _aspnet("MvcJsonNetOutput2M",
            # "Sends 2MB JSON document, MVC backend."
            response_bytes=2 * 1024 * 1024,
            work_item_instructions=90000, n_methods=2800,
            call_chain_depth=12, allocs_per_kinstr=5.5,
            stream_frac=0.22, store_frac=0.18, mlp=3.6),
    _aspnet("MvcJsonNetInput2M",
            # "Receives 2MB JSON document, MVC backend."
            request_bytes=2 * 1024 * 1024, response_bytes=256,
            work_item_instructions=95000, n_methods=2800,
            call_chain_depth=12, allocs_per_kinstr=5.8,
            stream_frac=0.22, mlp=3.4),
]

#: Systematic variants filling out the 53-benchmark suite: (name, base,
#: overrides).  Backend suffixes mirror the real suite (Raw = raw ADO.NET,
#: Dapper / EF = heavier object mappers, Platform = hand-tuned fast path).
_VARIANTS: list[tuple[str, str, dict]] = [
    ("PlaintextNonPipelined", "Plaintext",
     dict(request_bytes=140, response_bytes=131,
          work_item_instructions=2600)),
    ("PlaintextPlatform", "Plaintext",
     dict(work_item_instructions=2200, n_methods=700, call_chain_depth=4)),
    ("PlaintextMvc", "Plaintext",
     dict(work_item_instructions=12000, n_methods=2600,
          call_chain_depth=11)),
    ("JsonPlatform", "Json",
     dict(work_item_instructions=4200, n_methods=900, call_chain_depth=5)),
    ("JsonMvc", "Json",
     dict(work_item_instructions=14000, n_methods=2700,
          call_chain_depth=11)),
    ("JsonHttpsHttpSys", "Json",
     dict(work_item_instructions=9500, allocs_per_kinstr=3.4)),
    ("MvcJsonOutput60k", "MvcJsonNetOutput2M",
     dict(response_bytes=60 * 1024, work_item_instructions=22000)),
    ("MvcJsonInput60k", "MvcJsonNetInput2M",
     dict(request_bytes=60 * 1024, response_bytes=256,
          work_item_instructions=24000)),
    ("MvcJsonNetOutput60k", "MvcJsonNetOutput2M",
     dict(response_bytes=60 * 1024, work_item_instructions=26000)),
    ("MvcJsonNetInput60k", "MvcJsonNetInput2M",
     dict(request_bytes=60 * 1024, response_bytes=256,
          work_item_instructions=27000)),
    ("JsonOutput2M", "MvcJsonNetOutput2M",
     dict(n_methods=1600, call_chain_depth=7,
          work_item_instructions=60000)),
    ("JsonInput2M", "MvcJsonNetInput2M",
     dict(n_methods=1600, call_chain_depth=7,
          work_item_instructions=62000)),
    ("DbSingleQueryRaw", "DbFortunesRaw",
     dict(response_bytes=512, work_item_instructions=9000,
          db_response_bytes=1024)),
    ("DbSingleQueryDapper", "DbFortunesRaw",
     dict(response_bytes=512, work_item_instructions=14000,
          db_response_bytes=1024, allocs_per_kinstr=5.0)),
    ("DbSingleQueryEf", "DbFortunesRaw",
     dict(response_bytes=512, work_item_instructions=20000,
          db_response_bytes=1024, allocs_per_kinstr=5.6,
          n_methods=2800)),
    ("DbMultiQueryRaw", "DbFortunesRaw",
     dict(db_queries_per_request=20, response_bytes=3072,
          work_item_instructions=22000)),
    ("DbMultiQueryDapper", "DbFortunesRaw",
     dict(db_queries_per_request=20, response_bytes=3072,
          work_item_instructions=28000, allocs_per_kinstr=5.2)),
    ("DbMultiQueryEf", "DbFortunesRaw",
     dict(db_queries_per_request=20, response_bytes=3072,
          work_item_instructions=36000, allocs_per_kinstr=5.8,
          n_methods=2800)),
    ("DbMultiUpdateRaw", "MvcDbMultiUpdateRaw",
     dict(n_methods=2200, call_chain_depth=9,
          work_item_instructions=24000)),
    ("DbMultiUpdateDapper", "MvcDbMultiUpdateRaw",
     dict(n_methods=2400, work_item_instructions=34000,
          allocs_per_kinstr=5.6)),
    ("DbMultiUpdateEf", "MvcDbMultiUpdateRaw",
     dict(n_methods=2900, work_item_instructions=44000,
          allocs_per_kinstr=6.2)),
    ("DbFortunesDapper", "DbFortunesRaw",
     dict(work_item_instructions=22000, allocs_per_kinstr=5.0)),
    ("DbFortunesEf", "DbFortunesRaw",
     dict(work_item_instructions=30000, allocs_per_kinstr=5.6,
          n_methods=2800)),
    ("MvcDbSingleQueryRaw", "MvcDbFortunesRaw",
     dict(response_bytes=512, work_item_instructions=18000,
          db_response_bytes=1024)),
    ("MvcDbMultiQueryRaw", "MvcDbFortunesRaw",
     dict(db_queries_per_request=20, response_bytes=3072,
          work_item_instructions=32000)),
    ("MvcDbFortunesDapper", "MvcDbFortunesRaw",
     dict(work_item_instructions=32000, allocs_per_kinstr=5.2)),
    ("MvcDbFortunesEf", "MvcDbFortunesRaw",
     dict(work_item_instructions=40000, allocs_per_kinstr=5.8,
          n_methods=3200)),
    ("StaticFiles", "Plaintext",
     dict(response_bytes=16 * 1024, work_item_instructions=5200,
          stream_frac=0.25,
          )),
    ("ConnectionClose", "Plaintext",
     dict(request_bytes=140, response_bytes=131,
          work_item_instructions=8200, allocs_per_kinstr=2.6,
          contentions_per_minstr=20.0)),
    ("ConnectionCloseHttps", "Plaintext",
     dict(request_bytes=140, response_bytes=131,
          work_item_instructions=16000, allocs_per_kinstr=3.0)),
    ("SignalRBroadcast", "Json",
     dict(work_item_instructions=12000, contentions_per_minstr=40.0,
          allocs_per_kinstr=4.2, response_bytes=2048)),
    ("SignalREcho", "Json",
     dict(work_item_instructions=8000, contentions_per_minstr=30.0,
          response_bytes=512)),
    ("GrpcUnary", "Json",
     dict(work_item_instructions=10000, response_bytes=512,
          allocs_per_kinstr=3.6)),
    ("GrpcServerStreaming", "Json",
     dict(work_item_instructions=11000, response_bytes=4096,
          allocs_per_kinstr=3.8, contentions_per_minstr=18.0)),
    ("WebSocketsEcho", "Json",
     dict(work_item_instructions=6000, response_bytes=256,
          contentions_per_minstr=16.0)),
    ("Caching", "Json",
     dict(work_item_instructions=7000, hot_objects=12000, hot_skew=1.8,
          allocs_per_kinstr=2.2, churn_per_call=0.7)),
    ("MemoryCachePlaintext", "Plaintext",
     dict(work_item_instructions=5200, hot_objects=10000, hot_skew=1.8,
          churn_per_call=0.5)),
    ("ResponseCachingPlaintext", "Plaintext",
     dict(work_item_instructions=4600, hot_objects=8000,
          churn_per_call=0.4)),
    ("HttpClientFactory", "Json",
     dict(work_item_instructions=9000, allocs_per_kinstr=4.4,
          exceptions_per_minstr=10.0)),
    ("Proxy", "Plaintext",
     dict(work_item_instructions=6800, request_bytes=512,
          response_bytes=4096)),
    ("Mvc", "Json",
     dict(work_item_instructions=15000, n_methods=2800,
          call_chain_depth=12)),
    ("MvcApiCrud", "Json",
     dict(work_item_instructions=20000, n_methods=3000,
          call_chain_depth=12, db_queries_per_request=2,
          db_response_bytes=1024)),
    ("Orchard", "MvcDbFortunesRaw",
     dict(work_item_instructions=60000, n_methods=3600,
          call_chain_depth=15, allocs_per_kinstr=6.0,
          hot_objects=10000)),
    ("BlazorServer", "Json",
     dict(work_item_instructions=24000, n_methods=3000,
          contentions_per_minstr=26.0, allocs_per_kinstr=5.0)),
    ("FortunesPlatform", "DbFortunesRaw",
     dict(work_item_instructions=10000, n_methods=1200,
          call_chain_depth=5)),
]


def aspnet_specs() -> list[WorkloadSpec]:
    """All 53 ASP.NET benchmark specs."""
    by_name = {s.name: s for s in _NAMED}
    out = list(_NAMED)
    for name, base, overrides in _VARIANTS:
        out.append(replace(by_name[base], name=name, **overrides))
    return out


ASPNET_BENCHMARKS: tuple[str, ...] = tuple(
    s.name for s in aspnet_specs())

#: The paper's Table IV ASP.NET subset.
TABLE4_ASPNET_SUBSET = ("DbFortunesRaw", "MvcDbFortunesRaw",
                        "MvcDbMultiUpdateRaw", "Plaintext", "Json",
                        "CopyToAsync", "MvcJsonNetOutput2M",
                        "MvcJsonNetInput2M")
