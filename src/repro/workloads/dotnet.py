"""The .NET microbenchmark suite model: 44 categories, 2906 workloads.

Category names follow the ``dotnet/performance`` repository (commit
c86ef708 per the paper's reference [19]): 21 system-level categories
(libraries) and 23 application-level ones (real algorithms / app kernels),
matching §II-A.  Per-category behaviour templates encode what those
benchmarks do — math kernels are tight predictable loops, System.IO and
System.Net call into the kernel, CscBench (the Roslyn C# compiler) has an
enormous code footprint, etc.  Individual workloads within a category are
seeded variations of the template (:meth:`WorkloadSpec.varied`).
"""

from __future__ import annotations

import random

from repro.kernel.syscalls import SyscallKind
from repro.seeding import stable_seed
from repro.workloads.spec import SuiteName, WorkloadSpec

_TOTAL_WORKLOADS = 2906


def _spec(name: str, system_level: bool, **kw) -> WorkloadSpec:
    defaults = dict(
        suite=SuiteName.DOTNET, category=name, managed=True,
        n_methods=90, method_size_mean=420,
        branch_frac=0.155, load_frac=0.285, store_frac=0.16,
        taken_bias=0.46, bias_spread=0.20,
        hot_objects=1600, object_slot=32, hot_skew=3.2,
        stream_frac=0.08, stack_frac=0.34,
        allocs_per_kinstr=3.0, churn_per_call=0.12,
        temporal_reuse=0.92, fresh_new_frac=0.3,
        exceptions_per_minstr=1.5, contentions_per_minstr=0.8,
        work_item_instructions=2600, call_chain_depth=3,
        ilp=2.7, mlp=3.0, microcode_frac=0.005, div_frac=0.002,
        threads=1, cpu_utilization=0.08,
    )
    defaults.update(kw)
    return WorkloadSpec(name=name, **defaults)


# ---------------------------------------------------------------------------
# (template, number of individual microbenchmarks in the category)
# Counts are proportioned like the real suite (System.Collections dominates)
# and normalized to exactly 2906 below.
# ---------------------------------------------------------------------------
_CATEGORY_TABLE: list[tuple[WorkloadSpec, int]] = [
    # ---- system-level categories (21) ---------------------------------
    (_spec("System.Runtime", True,
           n_methods=140, hot_objects=900, allocs_per_kinstr=1.2,
           work_item_instructions=2200), 310),
    (_spec("System.Collections", True,
           n_methods=110, hot_objects=8000, object_slot=32, hot_skew=2.2,
           allocs_per_kinstr=12.0, alloc_size_mean=120,
           churn_per_call=3.0, load_frac=0.31,
           cold_live_bytes=110 * 1024 * 1024,
           mlp=2.4, work_item_instructions=3000), 620),
    (_spec("System.Text", True,
           n_methods=100, hot_objects=2600, stream_frac=0.22,
           cold_live_bytes=52 * 1024 * 1024,
           allocs_per_kinstr=7.0, load_frac=0.30), 170),
    (_spec("System.Tests", True,
           n_methods=160, hot_objects=1500, allocs_per_kinstr=2.0,
           cold_live_bytes=55 * 1024 * 1024), 185),
    (_spec("System.Memory", True,
           n_methods=80, hot_objects=800, stream_frac=0.30,
           allocs_per_kinstr=0.9, load_frac=0.31, store_frac=0.18,
           mlp=4.5, ilp=3.0), 150),
    (_spec("System.Linq", True,
           n_methods=130, hot_objects=2400, allocs_per_kinstr=8.0,
           churn_per_call=0.3, microcode_frac=0.008,
           branch_frac=0.165), 155),
    (_spec("System.IO", True,
           n_methods=95, syscalls_per_kinstr=0.35,
           syscall_mix=((SyscallKind.READ, 3), (SyscallKind.WRITE, 3),
                        (SyscallKind.OPEN, 1), (SyscallKind.CLOSE, 1)),
           syscall_payload_bytes=4096, stream_frac=0.18), 130),
    (_spec("System.Net", True,
           n_methods=150, method_size_mean=520,
           syscalls_per_kinstr=0.5,
           syscall_mix=((SyscallKind.RECV, 3), (SyscallKind.SEND, 3),
                        (SyscallKind.EPOLL_WAIT, 1)),
           syscall_payload_bytes=1500,
           hot_objects=2000, allocs_per_kinstr=2.4,
           contentions_per_minstr=4.0), 115),
    (_spec("System.Threading", True,
           n_methods=70, method_size_mean=360,
           syscalls_per_kinstr=0.25,
           syscall_mix=((SyscallKind.FUTEX, 4), (SyscallKind.SCHED, 2)),
           contentions_per_minstr=40.0, microcode_frac=0.012,
           threads=8, cpu_utilization=0.4), 75),
    (_spec("System.ComponentModel", True,
           n_methods=60, method_size_mean=380, hot_objects=600,
           allocs_per_kinstr=1.0, work_item_instructions=1500), 14),
    (_spec("System.Numerics", True,
           branch_frac=0.10, load_frac=0.30, store_frac=0.14,
           taken_bias=0.72, bias_spread=0.10, ilp=3.3, mlp=4.2,
           stream_frac=0.28, div_frac=0.004, fp_heavy=True,
           allocs_per_kinstr=0.6), 135),
    (_spec("System.MathBenchmarks", True,
           n_methods=50, method_size_mean=260,
           branch_frac=0.09, load_frac=0.22, store_frac=0.10,
           taken_bias=0.85, bias_spread=0.06, loop_frac=0.35,
           avg_loop_trips=14.0, ilp=3.2, div_frac=0.015, fp_heavy=True,
           hot_objects=120, allocs_per_kinstr=0.15, temporal_reuse=0.96,
           exceptions_per_minstr=0.1, contentions_per_minstr=0.05,
           work_item_instructions=3400), 145),
    (_spec("System.Reflection", True,
           n_methods=120, microcode_frac=0.015, allocs_per_kinstr=2.8,
           hot_objects=1800, exceptions_per_minstr=3.0), 45),
    (_spec("System.Globalization", True,
           n_methods=85, hot_objects=2200, stream_frac=0.15,
           load_frac=0.30), 95),
    (_spec("System.Buffers", True,
           n_methods=60, stream_frac=0.34, mlp=4.6, ilp=3.0,
           allocs_per_kinstr=0.8, hot_objects=500), 65),
    (_spec("System.Security.Cryptography", True,
           branch_frac=0.11, taken_bias=0.75, bias_spread=0.08,
           stream_frac=0.30, ilp=3.1, allocs_per_kinstr=0.7,
           syscalls_per_kinstr=0.04,
           syscall_mix=((SyscallKind.READ, 1),)), 85),
    (_spec("System.Xml", True,
           n_methods=140, hot_objects=1800, allocs_per_kinstr=8.0,
           branch_frac=0.175, exceptions_per_minstr=2.5), 55),
    (_spec("System.Text.Json", True,
           n_methods=120, hot_objects=2600, allocs_per_kinstr=9.0,
           stream_frac=0.20, branch_frac=0.17, store_frac=0.17), 95),
    (_spec("System.Text.RegularExpressions", True,
           n_methods=95, hot_objects=1400, branch_frac=0.185,
           bias_spread=0.38, taken_bias=0.5, allocs_per_kinstr=2.2), 65),
    (_spec("System.Diagnostics", True,
           # "Kernel functions": dominated by OS interaction, very high
           # kernel share — one of the two Fig 1 top-level outliers.
           n_methods=55, method_size_mean=420,
           syscalls_per_kinstr=1.4,
           syscall_mix=((SyscallKind.SCHED, 3), (SyscallKind.OPEN, 2),
                        (SyscallKind.READ, 2), (SyscallKind.FUTEX, 1),
                        (SyscallKind.MMAP, 1)),
           syscall_payload_bytes=512,
           hot_objects=900, allocs_per_kinstr=1.8, store_frac=0.19,
           work_item_instructions=1600), 12),
    (_spec("System.Runtime.Intrinsics", True,
           branch_frac=0.08, taken_bias=0.8, bias_spread=0.06,
           stream_frac=0.32, ilp=3.5, mlp=4.8, allocs_per_kinstr=0.3,
           fp_heavy=True), 65),
    # ---- application-level categories (23) ------------------------------
    (_spec("CscBench", False,
           # Roslyn compiling: huge code base, many methods, heavy
           # allocation — the other Fig 1 outlier.
           n_methods=2600, method_size_mean=640, hot_objects=6000,
           hot_skew=2.0, method_skew=1.3, allocs_per_kinstr=10.0,
           churn_per_call=0.5,
           branch_frac=0.17, microcode_frac=0.009,
           exceptions_per_minstr=4.0, work_item_instructions=5200,
           call_chain_depth=7, mlp=2.6), 8),
    (_spec("SeekUnroll", False,
           # A single unrolled search loop: tiny, perfectly predictable.
           n_methods=5, method_size_mean=900, branch_frac=0.07,
           taken_bias=0.95, bias_spread=0.02, loop_frac=0.5,
           avg_loop_trips=24.0, stream_frac=0.5, stack_frac=0.2,
           hot_objects=60, allocs_per_kinstr=0.02, ilp=3.6, mlp=5.0,
           exceptions_per_minstr=0.02, contentions_per_minstr=0.01,
           tiering=False, work_item_instructions=5000), 6),
    (_spec("Burgers", False,
           branch_frac=0.085, taken_bias=0.88, bias_spread=0.05,
           loop_frac=0.4, avg_loop_trips=18.0, stream_frac=0.46,
           stack_frac=0.18, hot_objects=300, object_slot=256,
           stream_bytes=6 * 1024 * 1024, allocs_per_kinstr=0.1,
           ilp=3.2, mlp=5.2, div_frac=0.006, fp_heavy=True), 10),
    (_spec("ByteMark", False,
           n_methods=70, branch_frac=0.14, hot_objects=2200,
           object_slot=128, allocs_per_kinstr=0.8, ilp=2.9), 24),
    (_spec("SciMark", False,
           branch_frac=0.09, taken_bias=0.86, bias_spread=0.06,
           loop_frac=0.42, avg_loop_trips=16.0, stream_frac=0.4,
           hot_objects=500, object_slot=256,
           stream_bytes=4 * 1024 * 1024,
           allocs_per_kinstr=0.2, ilp=3.1, mlp=4.8, div_frac=0.008,
           fp_heavy=True), 12),
    (_spec("V8.Crypto", False,
           branch_frac=0.12, taken_bias=0.7, stream_frac=0.2,
           hot_objects=800, allocs_per_kinstr=1.4, ilp=2.9,
           div_frac=0.01), 10),
    (_spec("V8.Richards", False,
           n_methods=60, branch_frac=0.18, bias_spread=0.36,
           hot_objects=1600, allocs_per_kinstr=2.6,
           churn_per_call=0.25), 8),
    (_spec("BenchmarksGame.Fannkuch", False,
           branch_frac=0.13, taken_bias=0.8, loop_frac=0.45,
           avg_loop_trips=12.0, hot_objects=80, stack_frac=0.5,
           allocs_per_kinstr=0.05, ilp=3.0), 12),
    (_spec("BenchmarksGame.NBody", False,
           branch_frac=0.07, taken_bias=0.9, bias_spread=0.04,
           loop_frac=0.5, avg_loop_trips=20.0, hot_objects=64,
           object_slot=128, stack_frac=0.3, allocs_per_kinstr=0.02,
           ilp=3.4, div_frac=0.012, fp_heavy=True), 10),
    (_spec("BenchmarksGame.SpectralNorm", False,
           branch_frac=0.08, taken_bias=0.9, bias_spread=0.04,
           loop_frac=0.5, avg_loop_trips=22.0, stream_frac=0.42,
           stream_bytes=2 * 1024 * 1024, hot_objects=128,
           allocs_per_kinstr=0.03, ilp=3.3, div_frac=0.01,
           fp_heavy=True), 8),
    (_spec("PacketTracer", False,
           n_methods=110, branch_frac=0.12, hot_objects=3000,
           object_slot=96, allocs_per_kinstr=3.0, churn_per_call=0.3,
           ilp=3.0, div_frac=0.009, fp_heavy=True), 14),
    (_spec("Devirtualization", False,
           n_methods=180, branch_frac=0.17, bias_spread=0.30,
           microcode_frac=0.007, allocs_per_kinstr=1.0), 16),
    (_spec("Inlining", False,
           n_methods=420, method_size_mean=180, branch_frac=0.16,
           allocs_per_kinstr=0.6, call_chain_depth=8,
           work_item_instructions=2000), 22),
    (_spec("GuardedDevirtualization", False,
           n_methods=160, branch_frac=0.18, bias_spread=0.4,
           taken_bias=0.5, allocs_per_kinstr=0.8), 12),
    (_spec("Layout", False,
           n_methods=90, hot_objects=2200, object_slot=128,
           hot_skew=2.4, load_frac=0.32, mlp=2.2,
           allocs_per_kinstr=1.2), 14),
    (_spec("LowLevelPerf", False,
           n_methods=45, method_size_mean=220, branch_frac=0.15,
           hot_objects=400, allocs_per_kinstr=0.5,
           work_item_instructions=1400, microcode_frac=0.01), 30),
    (_spec("Span", False,
           stream_frac=0.36, mlp=4.4, ilp=3.2, hot_objects=600,
           allocs_per_kinstr=0.4, branch_frac=0.12,
           taken_bias=0.7), 40),
    (_spec("MicroBenchmarks.Serializers", False,
           n_methods=200, hot_objects=2000, allocs_per_kinstr=10.0,
           churn_per_call=0.35, branch_frac=0.165, store_frac=0.18,
           exceptions_per_minstr=3.0), 55),
    (_spec("Exceptions", False,
           n_methods=70, exceptions_per_minstr=900.0,
           microcode_frac=0.02, branch_frac=0.18, bias_spread=0.4,
           allocs_per_kinstr=2.0, work_item_instructions=1200), 20),
    (_spec("LinqBenchmarks", False,
           n_methods=140, hot_objects=2500, hot_skew=2.1,
           allocs_per_kinstr=9.0, churn_per_call=0.35,
           microcode_frac=0.008, mlp=2.5), 18),
    (_spec("PerfLabTests", False,
           n_methods=220, hot_objects=2400, allocs_per_kinstr=2.2,
           work_item_instructions=2600), 120),
    (_spec("Benchstone.BenchF", False,
           branch_frac=0.09, taken_bias=0.85, bias_spread=0.07,
           loop_frac=0.4, avg_loop_trips=15.0, stream_frac=0.3,
           hot_objects=300, allocs_per_kinstr=0.1, ilp=3.2,
           div_frac=0.01, fp_heavy=True), 26),
    (_spec("Benchstone.BenchI", False,
           branch_frac=0.15, taken_bias=0.6, hot_objects=900,
           stack_frac=0.42, allocs_per_kinstr=0.3, ilp=2.8), 28),
]


def _normalized_counts() -> list[int]:
    counts = [c for _, c in _CATEGORY_TABLE]
    diff = _TOTAL_WORKLOADS - sum(counts)
    # Absorb any residue in the largest category (System.Collections).
    biggest = max(range(len(counts)), key=lambda i: counts[i])
    counts[biggest] += diff
    if counts[biggest] <= 0:
        raise AssertionError("category counts are inconsistent")
    return counts


DOTNET_CATEGORIES: tuple[str, ...] = tuple(
    spec.name for spec, _ in _CATEGORY_TABLE)

_COUNTS = dict(zip(DOTNET_CATEGORIES, _normalized_counts()))


def dotnet_category_specs() -> list[WorkloadSpec]:
    """The 44 category templates (category-as-a-unit experiments)."""
    return [spec for spec, _ in _CATEGORY_TABLE]


def category_workload_count(category: str) -> int:
    """Number of individual microbenchmarks in ``category``."""
    return _COUNTS[category]


def dotnet_workloads(per_category: int | None = None,
                     seed: int = 11) -> list[WorkloadSpec]:
    """Individual microbenchmark specs.

    ``per_category=None`` expands every category to its full size (2906
    workloads total); an integer caps each category (fidelity control for
    the Subset-B experiment).
    """
    out: list[WorkloadSpec] = []
    for template, _ in _CATEGORY_TABLE:
        count = _COUNTS[template.name]
        if per_category is not None:
            count = min(count, per_category)
        rng = random.Random(stable_seed(seed, template.name))
        for i in range(count):
            out.append(template.varied(
                rng, name=f"{template.name}.B{i:03d}"))
    return out


def total_workload_count() -> int:
    return sum(_COUNTS.values())
