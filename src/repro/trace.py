"""The trace protocol shared by workload generators and the pipeline model.

Workload programs (:mod:`repro.workloads`), the managed runtime
(:mod:`repro.runtime`) and the OS model (:mod:`repro.kernel`) all *emit*
operation tuples; the core pipeline model (:mod:`repro.uarch.pipeline`)
*consumes* them.  Plain tuples with an integer opcode keep the hot loop
fast — a run simulates 10^5-10^6 of these.

Operation tuples
----------------

``(OP_BLOCK, pc, n_instr, n_bytes, is_kernel)``
    Straight-line execution of a basic block: ``n_instr`` non-memory,
    non-branch instructions occupying ``n_bytes`` of code at ``pc``.
    The frontend fetches the byte range; ``is_kernel`` attributes the
    instructions to kernel or user mode (Table I metrics 0/1).

``(OP_BRANCH, pc, target, taken)``
    One branch instruction at ``pc``.  Resolved against the branch unit;
    drives bad-speculation and re-steer accounting.

``(OP_LOAD, addr)`` / ``(OP_STORE, addr)``
    One memory instruction accessing ``addr`` through D-TLB and D-cache.

``(OP_EVENT, kind, payload)``
    A runtime event marker (not an instruction): forwarded to the tracer /
    sampler.  ``kind`` is one of the ``EV_*`` constants.

Batched form
------------

:class:`TraceBuffer` holds the same operations in structure-of-arrays
form — four parallel columns (opcode, arg0..arg2) plus an event
side-table — so the batched consume loop
(:meth:`repro.uarch.pipeline.Core.consume_buffer`) can pre-decode
addresses vectorized and index plain lists instead of unpacking one
tuple per op.  :class:`TraceBufferStream` chunks an op source into
sealed buffers; :meth:`TraceBuffer.iter_ops` converts back to tuples, so
either representation can feed either consume path.

Address-space layout
--------------------

A single flat virtual address space per workload, carved into regions so
that code, JIT code, heap and kernel structures never collide.  The
boundaries are coarse on purpose; the OS model only needs page-granular
uniqueness.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs

# --- operation opcodes -------------------------------------------------
OP_BLOCK = 0
OP_BRANCH = 1
OP_LOAD = 2
OP_STORE = 3
OP_EVENT = 4

# --- runtime / tracer event kinds (Table I metrics 19-23) ---------------
EV_GC_TRIGGERED = "gc/triggered"
EV_GC_ALLOCATION_TICK = "gc/allocation_tick"
EV_JIT_STARTED = "jit/jitting_started"
EV_EXCEPTION = "exception/start"
EV_CONTENTION = "contention/start"
# Auxiliary events (not Table I metrics, used by analyses).
EV_GC_COMPLETED = "gc/completed"
EV_SYSCALL = "os/syscall"
EV_REQUEST_DONE = "app/request_done"
# JIT metadata events: payload (base, size) / (old_base, new_base, size).
# Always emitted; §VIII-extension hardware consumes them when enabled
# ("hooks in the ISA can be used by software to provide metadata
# regarding JITed code pages to the hardware").
EV_JIT_CODE_EMITTED = "jit/code_emitted"
EV_JIT_CODE_MOVED = "jit/code_moved"

RUNTIME_EVENT_KINDS = (
    EV_GC_TRIGGERED,
    EV_GC_ALLOCATION_TICK,
    EV_JIT_STARTED,
    EV_EXCEPTION,
    EV_CONTENTION,
)

# --- virtual address space layout ---------------------------------------
#: Statically compiled user code (the AOT'd parts of an app / SPEC binaries).
REGION_CODE_BASE = 0x0000_4000_0000
#: CLR runtime's own (precompiled) code: JIT compiler, GC, class loader.
REGION_CLR_CODE_BASE = 0x0000_6000_0000
#: JITed code pages — allocated fresh, never reused (see runtime.jit).
REGION_JIT_CODE_BASE = 0x0000_8000_0000
#: Kernel text (syscall handlers, network stack).
REGION_KERNEL_CODE_BASE = 0xFFFF_8000_0000
#: Managed heap (gen0/1/2 + LOH).
REGION_HEAP_BASE = 0x0000_C000_0000
#: Native/stack/static data.
REGION_STACK_BASE = 0x0000_7F00_0000
#: Kernel data (socket buffers, sk_buffs, page-cache pages).
REGION_KERNEL_DATA_BASE = 0xFFFF_C000_0000

PAGE_SIZE = 4096


# --- batched structure-of-arrays buffers --------------------------------

#: OP_BLOCK packs ``n_bytes | (kernel << BLOCK_KERNEL_SHIFT)`` into column
#: a2.  Bit 32 leaves the full u32 range for block byte counts while
#: keeping every column value inside int64 for the vectorized decode.
BLOCK_KERNEL_SHIFT = 32
_KERNEL_BIT = 1 << BLOCK_KERNEL_SHIFT
BLOCK_NBYTES_MASK = _KERNEL_BIT - 1


class TraceBuffer:
    """One chunk of trace operations in structure-of-arrays form.

    Columns (parallel Python lists, one entry per op):

    ======== ============== ============== ==============================
    opcode   a0             a1             a2
    ======== ============== ============== ==============================
    OP_BLOCK pc             n_instr        n_bytes | (kernel << 32)
    OP_BRANCH pc            target         taken (0/1)
    OP_LOAD  addr           0              0
    OP_STORE addr           0              0
    OP_EVENT event index    0              0
    ======== ============== ============== ==============================

    Event ``(kind, payload)`` pairs live in the ``events`` side-table,
    indexed by a0 — payloads are arbitrary Python objects and must not
    constrain the hot columns.  :meth:`seal` pre-decodes the address
    columns vectorized (cache line, line of the last block byte) so the
    consume loop never shifts per op.
    """

    __slots__ = ("kinds", "a0", "a1", "a2", "events", "n_instructions",
                 "lines", "line_ends", "_vcols")

    def __init__(self) -> None:
        self.kinds: list[int] = []
        self.a0: list[int] = []
        self.a1: list[int] = []
        self.a2: list[int] = []
        self.events: list[tuple] = []
        self.n_instructions = 0
        self.lines: list[int] | None = None
        self.line_ends: list[int] | None = None
        # Per-buffer cache of the vector engine's derived columns
        # (numpy views, prev-occurrence indexes, per-window segments);
        # owned by repro.uarch.vector, invalidated with the columns.
        self._vcols = None

    def __len__(self) -> int:
        return len(self.kinds)

    # -- push emitters (the batched twins of yielding a tuple) ----------
    def block(self, pc: int, n_instr: int, n_bytes: int,
              kernel: bool = False) -> None:
        self.kinds.append(OP_BLOCK)
        self.a0.append(pc)
        self.a1.append(n_instr)
        self.a2.append(n_bytes | _KERNEL_BIT if kernel else n_bytes)
        self.n_instructions += n_instr

    def branch(self, pc: int, target: int, taken) -> None:
        self.kinds.append(OP_BRANCH)
        self.a0.append(pc)
        self.a1.append(target)
        self.a2.append(1 if taken else 0)
        self.n_instructions += 1

    def load(self, addr: int) -> None:
        self.kinds.append(OP_LOAD)
        self.a0.append(addr)
        self.a1.append(0)
        self.a2.append(0)
        self.n_instructions += 1

    def store(self, addr: int) -> None:
        self.kinds.append(OP_STORE)
        self.a0.append(addr)
        self.a1.append(0)
        self.a2.append(0)
        self.n_instructions += 1

    def event(self, kind: str, payload) -> None:
        self.kinds.append(OP_EVENT)
        self.a0.append(len(self.events))
        self.a1.append(0)
        self.a2.append(0)
        self.events.append((kind, payload))

    # -- generator-compatibility adapters -------------------------------
    def extend(self, ops) -> None:
        """Append every op tuple from ``ops`` (drains generators eagerly)."""
        self.fill_from(iter(ops), None)

    def fill_from(self, ops_iter, max_instructions: int | None) -> bool:
        """Pull ops until ``max_instructions`` more are buffered.

        Returns ``True`` when the iterator was exhausted (like a trace
        replay ending), ``False`` when the target was reached first.
        The target is a lower bound: the buffer stops after the op that
        crosses it, never mid-op.
        """
        kinds = self.kinds
        a0 = self.a0
        a1 = self.a1
        a2 = self.a2
        events = self.events
        n = self.n_instructions
        target = (n + max_instructions
                  if max_instructions is not None else None)
        for op in ops_iter:
            kind = op[0]
            if kind == OP_LOAD or kind == OP_STORE:
                kinds.append(kind)
                a0.append(op[1])
                a1.append(0)
                a2.append(0)
                n += 1
            elif kind == OP_BLOCK:
                kinds.append(OP_BLOCK)
                a0.append(op[1])
                a1.append(op[2])
                a2.append(op[3] | _KERNEL_BIT if op[4] else op[3])
                n += op[2]
            elif kind == OP_BRANCH:
                kinds.append(OP_BRANCH)
                a0.append(op[1])
                a1.append(op[2])
                a2.append(1 if op[3] else 0)
                n += 1
            elif kind == OP_EVENT:
                kinds.append(OP_EVENT)
                a0.append(len(events))
                a1.append(0)
                a2.append(0)
                events.append((op[1], op[2]))
            else:
                raise ValueError(f"unknown op kind {kind!r}")
            if target is not None and n >= target:
                self.n_instructions = n
                return False
        self.n_instructions = n
        return True

    def iter_ops(self):
        """Yield the buffered ops back as plain tuples (legacy consume)."""
        kinds = self.kinds
        a0 = self.a0
        a1 = self.a1
        a2 = self.a2
        events = self.events
        for i in range(len(kinds)):
            kind = kinds[i]
            if kind == OP_LOAD or kind == OP_STORE:
                yield (kind, a0[i])
            elif kind == OP_BLOCK:
                packed = a2[i]
                yield (OP_BLOCK, a0[i], a1[i], packed & BLOCK_NBYTES_MASK,
                       bool(packed >> BLOCK_KERNEL_SHIFT))
            elif kind == OP_BRANCH:
                yield (OP_BRANCH, a0[i], a1[i], bool(a2[i]))
            else:
                ev_kind, payload = events[a0[i]]
                yield (OP_EVENT, ev_kind, payload)

    # -- vectorized transforms ------------------------------------------
    def color_private(self, spans, color: int) -> None:
        """Offset load/store addresses inside ``spans`` by ``color``.

        The buffer-level form of :func:`repro.harness.runner._color_ops`:
        one vectorized mask instead of one tuple rebuild per memory op.
        """
        if not color or not len(self.kinds):
            return
        kinds = np.asarray(self.kinds, dtype=np.int64)
        a0 = np.asarray(self.a0, dtype=np.int64)
        mem = (kinds == OP_LOAD) | (kinds == OP_STORE)
        in_span = np.zeros(len(a0), dtype=bool)
        for lo, hi in spans:
            in_span |= (a0 >= lo) & (a0 < hi)
        mask = mem & in_span
        if mask.any():
            if not a0.flags.writeable:       # zero-copy replay column
                a0 = a0.copy()
            a0[mask] += color
            self.a0 = a0.tolist()
            self.lines = None
            self.line_ends = None
            self._vcols = None

    def seal(self) -> "TraceBuffer":
        """Pre-decode address columns; idempotent, returns ``self``."""
        if self.lines is not None:
            return self
        _t0 = time.perf_counter() if obs.enabled() else None
        a0 = np.asarray(self.a0, dtype=np.int64)
        sizes = np.asarray(self.a2, dtype=np.int64) & BLOCK_NBYTES_MASK
        # 64 B cache lines, matching the hardcoded shifts of the
        # pipeline's fetch/micro-TLB paths (pages derive from lines).
        lines = a0 >> 6
        line_ends = (a0 + sizes - 1) >> 6
        if isinstance(self.a0, list):
            self.lines = lines.tolist()
            self.line_ends = line_ends.tolist()
        else:
            # Zero-copy (array/memoryview-backed) columns: expose the
            # derived columns as memoryviews too — indexing a memoryview
            # yields native Python ints, which the consume fast path
            # feeds into model state (repr-level bit-identity with the
            # list-backed decode requires exact int types).
            self.lines = memoryview(np.ascontiguousarray(lines))
            self.line_ends = memoryview(np.ascontiguousarray(line_ends))
        if _t0 is not None:
            obs.observe("sim.seal_seconds", time.perf_counter() - _t0)
        return self

    @classmethod
    def from_columns(cls, kinds, a0, a1, a2, events,
                     n_instructions: int) -> "TraceBuffer":
        """Adopt prebuilt columns (lists, arrays or memoryviews) verbatim.

        The zero-copy decode path of :mod:`repro.perf.trace_io` hands
        ``memoryview`` columns over the trace file bytes; indexing one
        yields a native Python ``int``, so the consume loops see exactly
        the values the list-backed columns would hold.
        """
        buf = cls.__new__(cls)
        buf.kinds = kinds
        buf.a0 = a0
        buf.a1 = a1
        buf.a2 = a2
        buf.events = events
        buf.n_instructions = n_instructions
        buf.lines = None
        buf.line_ends = None
        buf._vcols = None
        return buf


class TraceBufferStream:
    """Chunked :class:`TraceBuffer` view over an op source.

    Exactly one source must be given:

    ``ops``
        A tuple iterator/generator; chunks are pulled through
        :meth:`TraceBuffer.fill_from`.
    ``filler``
        A push callback ``filler(buf, n_instructions) -> exhausted`` —
        the fast path for programs that implement ``fill_buffer``.
    ``buffers``
        An iterable of prebuilt :class:`TraceBuffer` chunks (trace
        replay).

    The stream tracks a resume offset ``pos`` inside the current chunk,
    so interrupted consumption (instruction limits, multicore quanta)
    continues mid-chunk.  ``transform`` is applied to each chunk before
    sealing (per-core address coloring).
    """

    __slots__ = ("chunk_instructions", "transform", "buf", "pos",
                 "_ops", "_filler", "_buffers", "_exhausted")

    def __init__(self, ops=None, filler=None, buffers=None,
                 chunk_instructions: int = 65536, transform=None) -> None:
        if sum(src is not None for src in (ops, filler, buffers)) != 1:
            raise ValueError("exactly one of ops/filler/buffers required")
        self.chunk_instructions = chunk_instructions
        self.transform = transform
        self.buf: TraceBuffer | None = None
        self.pos = 0
        self._ops = iter(ops) if ops is not None else None
        self._filler = filler
        self._buffers = iter(buffers) if buffers is not None else None
        self._exhausted = False

    def buffer(self) -> TraceBuffer | None:
        """The current sealed chunk with unconsumed ops, or ``None``."""
        buf = self.buf
        if buf is not None and self.pos < len(buf.kinds):
            return buf
        while True:
            if self._exhausted:
                return None
            if self._buffers is not None:
                buf = next(self._buffers, None)
                if buf is None:
                    self._exhausted = True
                    return None
            else:
                buf = TraceBuffer()
                if self._filler is not None:
                    self._exhausted = bool(
                        self._filler(buf, self.chunk_instructions))
                else:
                    self._exhausted = buf.fill_from(
                        self._ops, self.chunk_instructions)
            if self.transform is not None:
                self.transform(buf)
            self.buf = buf.seal()
            self.pos = 0
            if buf.kinds:
                return buf

    def iter_ops(self):
        """Remaining ops as tuples (feeds the legacy consume path)."""
        while True:
            buf = self.buffer()
            if buf is None:
                return
            pos = self.pos
            self.pos = len(buf.kinds)
            ops = buf.iter_ops()
            if pos:
                for _ in range(pos):
                    next(ops)
            yield from ops
