"""The trace protocol shared by workload generators and the pipeline model.

Workload programs (:mod:`repro.workloads`), the managed runtime
(:mod:`repro.runtime`) and the OS model (:mod:`repro.kernel`) all *emit*
operation tuples; the core pipeline model (:mod:`repro.uarch.pipeline`)
*consumes* them.  Plain tuples with an integer opcode keep the hot loop
fast — a run simulates 10^5-10^6 of these.

Operation tuples
----------------

``(OP_BLOCK, pc, n_instr, n_bytes, is_kernel)``
    Straight-line execution of a basic block: ``n_instr`` non-memory,
    non-branch instructions occupying ``n_bytes`` of code at ``pc``.
    The frontend fetches the byte range; ``is_kernel`` attributes the
    instructions to kernel or user mode (Table I metrics 0/1).

``(OP_BRANCH, pc, target, taken)``
    One branch instruction at ``pc``.  Resolved against the branch unit;
    drives bad-speculation and re-steer accounting.

``(OP_LOAD, addr)`` / ``(OP_STORE, addr)``
    One memory instruction accessing ``addr`` through D-TLB and D-cache.

``(OP_EVENT, kind, payload)``
    A runtime event marker (not an instruction): forwarded to the tracer /
    sampler.  ``kind`` is one of the ``EV_*`` constants.

Address-space layout
--------------------

A single flat virtual address space per workload, carved into regions so
that code, JIT code, heap and kernel structures never collide.  The
boundaries are coarse on purpose; the OS model only needs page-granular
uniqueness.
"""

from __future__ import annotations

# --- operation opcodes -------------------------------------------------
OP_BLOCK = 0
OP_BRANCH = 1
OP_LOAD = 2
OP_STORE = 3
OP_EVENT = 4

# --- runtime / tracer event kinds (Table I metrics 19-23) ---------------
EV_GC_TRIGGERED = "gc/triggered"
EV_GC_ALLOCATION_TICK = "gc/allocation_tick"
EV_JIT_STARTED = "jit/jitting_started"
EV_EXCEPTION = "exception/start"
EV_CONTENTION = "contention/start"
# Auxiliary events (not Table I metrics, used by analyses).
EV_GC_COMPLETED = "gc/completed"
EV_SYSCALL = "os/syscall"
EV_REQUEST_DONE = "app/request_done"
# JIT metadata events: payload (base, size) / (old_base, new_base, size).
# Always emitted; §VIII-extension hardware consumes them when enabled
# ("hooks in the ISA can be used by software to provide metadata
# regarding JITed code pages to the hardware").
EV_JIT_CODE_EMITTED = "jit/code_emitted"
EV_JIT_CODE_MOVED = "jit/code_moved"

RUNTIME_EVENT_KINDS = (
    EV_GC_TRIGGERED,
    EV_GC_ALLOCATION_TICK,
    EV_JIT_STARTED,
    EV_EXCEPTION,
    EV_CONTENTION,
)

# --- virtual address space layout ---------------------------------------
#: Statically compiled user code (the AOT'd parts of an app / SPEC binaries).
REGION_CODE_BASE = 0x0000_4000_0000
#: CLR runtime's own (precompiled) code: JIT compiler, GC, class loader.
REGION_CLR_CODE_BASE = 0x0000_6000_0000
#: JITed code pages — allocated fresh, never reused (see runtime.jit).
REGION_JIT_CODE_BASE = 0x0000_8000_0000
#: Kernel text (syscall handlers, network stack).
REGION_KERNEL_CODE_BASE = 0xFFFF_8000_0000
#: Managed heap (gen0/1/2 + LOH).
REGION_HEAP_BASE = 0x0000_C000_0000
#: Native/stack/static data.
REGION_STACK_BASE = 0x0000_7F00_0000
#: Kernel data (socket buffers, sk_buffs, page-cache pages).
REGION_KERNEL_DATA_BASE = 0xFFFF_C000_0000

PAGE_SIZE = 4096
