"""Syscall and network-stack model.

Each syscall kind owns a slice of the kernel text (a :class:`CodeRegion`
at kernel addresses) and a data-touch pattern.  Network receive/send adds a
per-byte copy loop through socket buffers, which is what makes the ASP.NET
suite's kernel-instruction share so much larger than SPEC's (Fig 3) — the
paper attributes it "primarily ... to the code in the networking stack".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.codegen import CodeRegion, MixProfile
from repro.seeding import stable_seed
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE,
                         REGION_KERNEL_CODE_BASE, REGION_KERNEL_DATA_BASE)


class SyscallKind:
    """Symbolic syscall names (string constants, not an enum, for speed)."""

    RECV = "recv"
    SEND = "send"
    EPOLL_WAIT = "epoll_wait"
    READ = "read"
    WRITE = "write"
    FUTEX = "futex"
    MMAP = "mmap"
    OPEN = "open"
    CLOSE = "close"
    SCHED = "sched"

    ALL = (RECV, SEND, EPOLL_WAIT, READ, WRITE, FUTEX, MMAP, OPEN, CLOSE,
           SCHED)


@dataclass(frozen=True)
class _KindProfile:
    base_instructions: int      # fixed-path handler cost
    footprint_bytes: int        # handler text footprint
    touches_buffers: bool       # has a per-byte payload copy phase


_PROFILES: dict[str, _KindProfile] = {
    SyscallKind.RECV: _KindProfile(3200, 112 * 1024, True),
    SyscallKind.SEND: _KindProfile(2800, 96 * 1024, True),
    SyscallKind.EPOLL_WAIT: _KindProfile(1400, 32 * 1024, False),
    SyscallKind.READ: _KindProfile(1800, 48 * 1024, True),
    SyscallKind.WRITE: _KindProfile(1900, 48 * 1024, True),
    SyscallKind.FUTEX: _KindProfile(900, 16 * 1024, False),
    SyscallKind.MMAP: _KindProfile(2200, 40 * 1024, False),
    SyscallKind.OPEN: _KindProfile(2600, 56 * 1024, False),
    SyscallKind.CLOSE: _KindProfile(800, 16 * 1024, False),
    SyscallKind.SCHED: _KindProfile(1600, 48 * 1024, False),
}

#: Kernel code uses a branchier, load-heavier mix than typical user code
#: (linked lists of sk_buffs, long if-ladders in the protocol stack).
_KERNEL_MIX = MixProfile(branch_frac=0.19, load_frac=0.30, store_frac=0.12,
                         taken_bias=0.42, bias_spread=0.22, loop_frac=0.08,
                         avg_loop_trips=4.0)

_LINE = 64


class SyscallModel:
    """Generates kernel-mode op streams for syscalls.

    One instance per simulated process.  Handler code regions are laid out
    once (the kernel image does not move); socket buffers cycle through a
    fixed pool in kernel data space, so steady-state network traffic reuses
    (and therefore contends for) the same cache lines, as real kernels do.
    """

    _REGION_CACHE: dict[int, tuple[dict[str, CodeRegion], int]] = {}

    def __init__(self, seed: int = 0, buffer_pool_size: int = 24,
                 buffer_bytes: int = 32 * 1024) -> None:
        cached = self._REGION_CACHE.get(seed)
        if cached is None:
            regions: dict[str, CodeRegion] = {}
            base = REGION_KERNEL_CODE_BASE
            for kind in SyscallKind.ALL:
                prof = _PROFILES[kind]
                regions[kind] = CodeRegion(
                    base, prof.footprint_bytes,
                    seed=stable_seed(seed, "kernel", kind),
                    mix=_KERNEL_MIX)
                base += prof.footprint_bytes + 4096
            cached = (regions, base - REGION_KERNEL_CODE_BASE)
            self._REGION_CACHE[seed] = cached
        self._regions, self.kernel_text_bytes = cached
        self._buffer_pool_size = buffer_pool_size
        self._buffer_bytes = buffer_bytes
        self._next_buffer = 0
        # A small amount of hot kernel metadata (fd tables, socket structs).
        self._meta_base = REGION_KERNEL_DATA_BASE
        self._meta_bytes = 256 * 1024
        self._buf_base = self._meta_base + self._meta_bytes
        # Per-connection kernel structures are revisited heavily within a
        # syscall (sk_buff headers, socket state): burst-reuse ring.
        self._meta_ring: list[int] = []

    # ------------------------------------------------------------------
    def _acquire_buffer(self) -> int:
        buf = self._buf_base + self._next_buffer * self._buffer_bytes
        self._next_buffer = (self._next_buffer + 1) % self._buffer_pool_size
        return buf

    def kernel_data_span(self) -> tuple[int, int]:
        """(start, length) of all kernel data this model may touch."""
        length = (self._meta_bytes
                  + self._buffer_pool_size * self._buffer_bytes)
        return self._meta_base, length

    def handler_region(self, kind: str) -> CodeRegion:
        return self._regions[kind]

    # ------------------------------------------------------------------
    def emit(self, kind: str, rng: random.Random, payload_bytes: int = 0,
             user_buffer: int = 0):
        """Yield the op stream for one syscall invocation.

        ``payload_bytes`` drives the copy loop for data-moving syscalls;
        ``user_buffer`` is the user-space address data is copied to/from.
        """
        prof = _PROFILES[kind]
        region = self._regions[kind]
        meta_base = self._meta_base
        meta_lines = self._meta_bytes // _LINE
        ring = self._meta_ring

        def meta_load() -> int:
            if ring and rng.random() < 0.90:
                return ring[int(rng.random() * len(ring))]
            addr = meta_base + int(rng.random() ** 2 * meta_lines) * _LINE
            if len(ring) >= 8:
                ring.pop(0)
            ring.append(addr)
            return addr

        yield from region.walk(rng, prof.base_instructions,
                               load_addr=meta_load, store_addr=meta_load,
                               is_kernel=True, entry=0)
        if prof.touches_buffers and payload_bytes > 0:
            yield from self._copy_loop(region, rng, payload_bytes,
                                       user_buffer, to_user=(kind in
                                       (SyscallKind.RECV, SyscallKind.READ)))

    def _copy_loop(self, region: CodeRegion, rng: random.Random,
                   payload_bytes: int, user_buffer: int, to_user: bool):
        """copy_to_user/copy_from_user: sequential line-granular copy."""
        kbuf = self._acquire_buffer()
        n_lines = max(1, payload_bytes // _LINE)
        loop_pc = region.base + region.size_bytes - 64
        # Unrolled: one load + one store + 2 bookkeeping instrs per line,
        # one backward branch per 8 lines.
        for i in range(n_lines):
            src = (kbuf if to_user else user_buffer) + i * _LINE
            dst = (user_buffer if to_user else kbuf) + i * _LINE
            yield (OP_LOAD, src)
            yield (OP_STORE, dst)
            yield (OP_BLOCK, loop_pc, 2, 16, True)
            if i % 8 == 7:
                yield (OP_BRANCH, loop_pc + 12, loop_pc, i + 1 < n_lines)
        yield (OP_BRANCH, loop_pc + 12, loop_pc, False)

    # -- push twins (batched emission; see repro.trace.TraceBuffer) ------
    def emit_into(self, buf, kind: str, rng: random.Random,
                  payload_bytes: int = 0, user_buffer: int = 0) -> None:
        """Push twin of :meth:`emit` — same ops, same RNG call order."""
        prof = _PROFILES[kind]
        region = self._regions[kind]
        meta_base = self._meta_base
        meta_lines = self._meta_bytes // _LINE
        ring = self._meta_ring

        def meta_load() -> int:
            if ring and rng.random() < 0.90:
                return ring[int(rng.random() * len(ring))]
            addr = meta_base + int(rng.random() ** 2 * meta_lines) * _LINE
            if len(ring) >= 8:
                ring.pop(0)
            ring.append(addr)
            return addr

        region.walk_into(buf, rng, prof.base_instructions,
                         load_addr=meta_load, store_addr=meta_load,
                         is_kernel=True, entry=0)
        if prof.touches_buffers and payload_bytes > 0:
            self._copy_loop_into(buf, region, payload_bytes, user_buffer,
                                 to_user=(kind in (SyscallKind.RECV,
                                                   SyscallKind.READ)))

    def _copy_loop_into(self, buf, region: CodeRegion, payload_bytes: int,
                        user_buffer: int, to_user: bool) -> None:
        """Push twin of :meth:`_copy_loop` (no RNG use at all)."""
        kbuf = self._acquire_buffer()
        n_lines = max(1, payload_bytes // _LINE)
        loop_pc = region.base + region.size_bytes - 64
        src_base = kbuf if to_user else user_buffer
        dst_base = user_buffer if to_user else kbuf
        for i in range(n_lines):
            buf.load(src_base + i * _LINE)
            buf.store(dst_base + i * _LINE)
            buf.block(loop_pc, 2, 16, kernel=True)
            if i % 8 == 7:
                buf.branch(loop_pc + 12, loop_pc, i + 1 < n_lines)
        buf.branch(loop_pc + 12, loop_pc, False)

    # ------------------------------------------------------------------
    def instructions_estimate(self, kind: str, payload_bytes: int = 0) -> int:
        """Rough instruction count of one invocation (for pacing logic)."""
        prof = _PROFILES[kind]
        n = prof.base_instructions
        if prof.touches_buffers:
            n += (payload_bytes // _LINE) * 4
        return n
