"""Virtual memory model: demand paging and page-fault accounting.

Pages become *mapped* the first time they are touched (demand paging).
Because a first touch always implies a TLB walk, the pipeline only needs to
consult :meth:`VirtualMemory.touch` on TLB-walk paths, keeping the fault
check off the hot path.

Page faults feed Table I metric 18 (page faults PKI).  JITed code pages and
ever-growing gen0 allocation frontiers both generate first-touch faults,
which is how the paper's "ASP.NET has ~300x the page faults of SPEC"
observation arises in this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace import PAGE_SIZE


@dataclass
class VmStats:
    minor_faults: int = 0
    major_faults: int = 0
    mapped_pages: int = 0
    unmapped_pages: int = 0       # pages released (e.g. decommitted heap)

    @property
    def faults(self) -> int:
        return self.minor_faults + self.major_faults

    def snapshot(self) -> "VmStats":
        return VmStats(self.minor_faults, self.major_faults,
                       self.mapped_pages, self.unmapped_pages)


class VirtualMemory:
    """Tracks which virtual pages of one address space are mapped.

    ``major_fault_fraction`` models the small fraction of faults that hit
    backing storage (file-backed code pages on first load).
    """

    #: cycles charged for servicing a fault (handler runs in kernel mode).
    #: Scaled below the real ~1-4k/60k+ cycle costs because fault *rates*
    #: are inflated in short simulated windows (first-touch transients
    #: that would amortize over billions of instructions) — same scale
    #: treatment as the GC budgets.
    MINOR_FAULT_CYCLES = 250
    MAJOR_FAULT_CYCLES = 20_000

    def __init__(self, page_size: int = PAGE_SIZE,
                 major_fault_fraction: float = 0.002) -> None:
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self._mapped: set[int] = set()
        self.major_fault_fraction = major_fault_fraction
        self.stats = VmStats()
        self._fault_seq = 0
        self._map_epoch = 0          # bumped on page removal (see below)

    def touch(self, addr: int) -> int:
        """Record an access to ``addr``.

        Returns the fault-handling cost in cycles (0 if the page was
        already mapped).
        """
        vpn = addr >> self._page_shift
        if vpn in self._mapped:
            return 0
        self._mapped.add(vpn)
        self.stats.mapped_pages += 1
        self._fault_seq += 1
        # Deterministic "every Nth fault is major" approximation.
        if (self.major_fault_fraction > 0
                and self._fault_seq % max(1, round(1 / self.major_fault_fraction)) == 0):
            self.stats.major_faults += 1
            return self.MAJOR_FAULT_CYCLES
        self.stats.minor_faults += 1
        return self.MINOR_FAULT_CYCLES

    def is_mapped(self, addr: int) -> bool:
        return (addr >> self._page_shift) in self._mapped

    def premap_range(self, start: int, length: int) -> None:
        """Map ``[start, start+length)`` without faulting.

        Used for warm regions measurement should not see faults for (e.g.
        SPEC's statically initialized working set, the kernel image).
        """
        first = start >> self._page_shift
        last = (start + max(length, 1) - 1) >> self._page_shift
        mapped = self._mapped
        before = len(mapped)
        mapped.update(range(first, last + 1))
        self.stats.mapped_pages += len(mapped) - before

    def unmap_range(self, start: int, length: int) -> None:
        """Decommit pages (heap shrink after GC); future touches fault again."""
        first = start >> self._page_shift
        last = (start + max(length, 1) - 1) >> self._page_shift
        mapped = self._mapped
        before = len(mapped)
        mapped.difference_update(range(first, last + 1))
        self.stats.unmapped_pages += before - len(mapped)
        # Removals are the one mutation a (len, epoch) cache key cannot
        # see through set length alone (remove+add keeps len constant),
        # so they bump the epoch.  repro.uarch.native keys its exported
        # page-table hash on it to skip rebuilds across consume calls.
        self._map_epoch += 1

    @property
    def resident_bytes(self) -> int:
        return len(self._mapped) * self.page_size

    def reset_stats(self) -> None:
        self.stats = VmStats()
