"""OS model: virtual memory (demand paging, page faults) and syscalls.

The paper's Fig 3 (kernel instruction share) and the ~300x page-fault gap
between ASP.NET and SPEC (§VII-A1) are produced by this layer.
"""

from repro.kernel.vm import VirtualMemory, VmStats
from repro.kernel.syscalls import SyscallModel, SyscallKind

__all__ = ["VirtualMemory", "VmStats", "SyscallModel", "SyscallKind"]
