"""Previous-vs-current comparison of ``BENCH_throughput.json``.

CI runs the throughput bench on every push; this prints a markdown
table of each numeric metric against the committed baseline so a PR's
job summary shows the perf delta at a glance.  Report-only by default:
exit status is 0 — CI boxes are too noisy for a hard gate, and the
bench's own assertions already guard the invariants that matter
(engine min speedup, mmap peak reduction).  Opt into a gate with
``--fail-on-regression PCT``: any metric that regressed by more than
PCT percent (in its improvement direction) makes the run exit 1.

Gate scoping: raw throughput numbers move with the CI box, but same-run
*ratios* (``speedup`` metrics — both sides measured in one process) are
stable, so the CI gates narrow with ``--sections`` (only those top-level
sections participate: ``engine,micro`` in the batched-engine job,
``multicore`` in the vector-multicore job) and ``--gate-suffix speedup``
(only metrics with that suffix can fail the gate; everything else stays
report-only).  Sections nest arbitrarily — the flattener picks up e.g.
``multicore.core_counts.8.speedup`` and ``multicore.sampler.speedup``.

Usage::

    python benchmarks/compare_throughput.py BASELINE.json CURRENT.json
    python benchmarks/compare_throughput.py BASELINE.json CURRENT.json \
        --sections engine,micro --gate-suffix speedup \
        --fail-on-regression 25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metrics where a larger value is an improvement; everything else
#: (seconds, bytes) improves downward
_HIGHER_IS_BETTER = ("instr_per_s", "speedup", "reduction")


def _flatten(node, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            out.update(_flatten(node[key], f"{prefix}{key}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix[:-1]] = float(node)
    return out


def _load(path: Path, sections: list[str] | None = None) -> dict[str, float]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"<!-- {path}: {exc} -->")
        return {}
    if sections is not None and isinstance(payload, dict):
        payload = {k: v for k, v in payload.items() if k in sections}
    return _flatten(payload)


def _improvement_pct(metric: str, prev: float, cur: float) -> float:
    """Signed percent change where positive always means *better*."""
    pct = (cur - prev) / prev * 100.0
    if any(metric.endswith(s) for s in _HIGHER_IS_BETTER):
        return pct
    return -pct


def _direction(metric: str, delta_pct: float) -> str:
    if abs(delta_pct) < 2.0:
        return ""                      # below measurement noise
    better = any(metric.endswith(s) for s in _HIGHER_IS_BETTER)
    improved = (delta_pct > 0) == better
    return "✅" if improved else "⚠️"


def regressions(baseline: dict[str, float], current: dict[str, float],
                threshold_pct: float,
                gate_suffix: str | None = None) -> list[tuple[str, float]]:
    """Metrics that got worse by more than ``threshold_pct`` percent.

    Only metrics present on both sides participate; new/removed
    metrics can't regress.  ``gate_suffix`` restricts the gate to
    metrics whose name ends with it (same-run ratios; raw throughput
    stays report-only).  Returns ``(metric, regression_pct)`` pairs
    with the regression expressed as a positive percentage.
    """
    out: list[tuple[str, float]] = []
    for metric in sorted(set(baseline) & set(current)):
        if gate_suffix is not None and not metric.endswith(gate_suffix):
            continue
        prev, cur = baseline[metric], current[metric]
        if prev == 0:
            continue
        improvement = _improvement_pct(metric, prev, cur)
        if improvement < -threshold_pct:
            out.append((metric, -improvement))
    return out


def compare(baseline_path: Path, current_path: Path,
            sections: list[str] | None = None) -> str:
    baseline = _load(baseline_path, sections)
    current = _load(current_path, sections)
    if not current:
        return "No current throughput numbers to compare."
    lines = ["| metric | previous | current | Δ |",
             "|---|---:|---:|---:|"]
    for metric in sorted(set(baseline) | set(current)):
        prev, cur = baseline.get(metric), current.get(metric)
        if prev is None or cur is None:
            tag = "removed" if cur is None else "new"
            lines.append(f"| {metric} | "
                         f"{'' if prev is None else f'{prev:g}'} | "
                         f"{'' if cur is None else f'{cur:g}'} | {tag} |")
            continue
        if prev == 0:
            delta = "n/a"
        else:
            pct = (cur - prev) / prev * 100.0
            delta = f"{pct:+.1f}% {_direction(metric, pct)}".rstrip()
        lines.append(f"| {metric} | {prev:g} | {cur:g} | {delta} |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_throughput.json dumps.")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--fail-on-regression", metavar="PCT", type=float,
                        default=None,
                        help="exit 1 if any shared metric got worse by "
                             "more than PCT%% (default: report only)")
    parser.add_argument("--sections", metavar="A,B", default=None,
                        help="comma-separated top-level JSON sections to "
                             "compare (default: all)")
    parser.add_argument("--gate-suffix", metavar="SUFFIX", default=None,
                        help="only metrics ending with SUFFIX can fail "
                             "the --fail-on-regression gate (the table "
                             "still shows everything in --sections)")
    args = parser.parse_args(argv)
    sections = (args.sections.split(",") if args.sections else None)

    print("### Throughput bench: previous vs current\n")
    print(compare(args.baseline, args.current, sections))

    if args.fail_on_regression is not None:
        worse = regressions(_load(args.baseline, sections),
                            _load(args.current, sections),
                            args.fail_on_regression,
                            gate_suffix=args.gate_suffix)
        if worse:
            print(f"\n{len(worse)} metric(s) regressed more than "
                  f"{args.fail_on_regression:g}%:")
            for metric, pct in worse:
                print(f"  {metric}: -{pct:.1f}%")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
