"""Previous-vs-current comparison of ``BENCH_throughput.json``.

CI runs the throughput bench on every push; this prints a markdown
table of each numeric metric against the committed baseline so a PR's
job summary shows the perf delta at a glance.  Report-only by default:
exit status is 0 — CI boxes are too noisy for a hard gate, and the
bench's own assertions already guard the invariants that matter
(engine min speedup, mmap peak reduction).  Opt into a gate with
``--fail-on-regression PCT``: any metric that regressed by more than
PCT percent (in its improvement direction) makes the run exit 1.

Usage::

    python benchmarks/compare_throughput.py BASELINE.json CURRENT.json
    python benchmarks/compare_throughput.py BASELINE.json CURRENT.json \
        --fail-on-regression 10
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metrics where a larger value is an improvement; everything else
#: (seconds, bytes) improves downward
_HIGHER_IS_BETTER = ("instr_per_s", "speedup", "reduction")


def _flatten(node, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            out.update(_flatten(node[key], f"{prefix}{key}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix[:-1]] = float(node)
    return out


def _load(path: Path) -> dict[str, float]:
    try:
        return _flatten(json.loads(path.read_text()))
    except (OSError, ValueError) as exc:
        print(f"<!-- {path}: {exc} -->")
        return {}


def _improvement_pct(metric: str, prev: float, cur: float) -> float:
    """Signed percent change where positive always means *better*."""
    pct = (cur - prev) / prev * 100.0
    if any(metric.endswith(s) for s in _HIGHER_IS_BETTER):
        return pct
    return -pct


def _direction(metric: str, delta_pct: float) -> str:
    if abs(delta_pct) < 2.0:
        return ""                      # below measurement noise
    better = any(metric.endswith(s) for s in _HIGHER_IS_BETTER)
    improved = (delta_pct > 0) == better
    return "✅" if improved else "⚠️"


def regressions(baseline: dict[str, float], current: dict[str, float],
                threshold_pct: float) -> list[tuple[str, float]]:
    """Metrics that got worse by more than ``threshold_pct`` percent.

    Only metrics present on both sides participate; new/removed
    metrics can't regress.  Returns ``(metric, regression_pct)`` pairs
    with the regression expressed as a positive percentage.
    """
    out: list[tuple[str, float]] = []
    for metric in sorted(set(baseline) & set(current)):
        prev, cur = baseline[metric], current[metric]
        if prev == 0:
            continue
        improvement = _improvement_pct(metric, prev, cur)
        if improvement < -threshold_pct:
            out.append((metric, -improvement))
    return out


def compare(baseline_path: Path, current_path: Path) -> str:
    baseline = _load(baseline_path)
    current = _load(current_path)
    if not current:
        return "No current throughput numbers to compare."
    lines = ["| metric | previous | current | Δ |",
             "|---|---:|---:|---:|"]
    for metric in sorted(set(baseline) | set(current)):
        prev, cur = baseline.get(metric), current.get(metric)
        if prev is None or cur is None:
            tag = "removed" if cur is None else "new"
            lines.append(f"| {metric} | "
                         f"{'' if prev is None else f'{prev:g}'} | "
                         f"{'' if cur is None else f'{cur:g}'} | {tag} |")
            continue
        if prev == 0:
            delta = "n/a"
        else:
            pct = (cur - prev) / prev * 100.0
            delta = f"{pct:+.1f}% {_direction(metric, pct)}".rstrip()
        lines.append(f"| {metric} | {prev:g} | {cur:g} | {delta} |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_throughput.json dumps.")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--fail-on-regression", metavar="PCT", type=float,
                        default=None,
                        help="exit 1 if any shared metric got worse by "
                             "more than PCT%% (default: report only)")
    args = parser.parse_args(argv)

    print("### Throughput bench: previous vs current\n")
    print(compare(args.baseline, args.current))

    if args.fail_on_regression is not None:
        worse = regressions(_load(args.baseline), _load(args.current),
                            args.fail_on_regression)
        if worse:
            print(f"\n{len(worse)} metric(s) regressed more than "
                  f"{args.fail_on_regression:g}%:")
            for metric, pct in worse:
                print(f"  {metric}: -{pct:.1f}%")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
