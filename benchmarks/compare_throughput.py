"""Previous-vs-current comparison of ``BENCH_throughput.json``.

CI runs the throughput bench on every push; this prints a markdown
table of each numeric metric against the committed baseline so a PR's
job summary shows the perf delta at a glance.  Report-only by design:
exit status is always 0 — CI boxes are too noisy for a hard gate, and
the bench's own assertions already guard the invariants that matter
(engine min speedup, mmap peak reduction).

Usage::

    python benchmarks/compare_throughput.py BASELINE.json CURRENT.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: metrics where a larger value is an improvement; everything else
#: (seconds, bytes) improves downward
_HIGHER_IS_BETTER = ("instr_per_s", "speedup", "reduction")


def _flatten(node, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            out.update(_flatten(node[key], f"{prefix}{key}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix[:-1]] = float(node)
    return out


def _load(path: Path) -> dict[str, float]:
    try:
        return _flatten(json.loads(path.read_text()))
    except (OSError, ValueError) as exc:
        print(f"<!-- {path}: {exc} -->")
        return {}


def _direction(metric: str, delta_pct: float) -> str:
    if abs(delta_pct) < 2.0:
        return ""                      # below measurement noise
    better = any(metric.endswith(s) for s in _HIGHER_IS_BETTER)
    improved = (delta_pct > 0) == better
    return "✅" if improved else "⚠️"


def compare(baseline_path: Path, current_path: Path) -> str:
    baseline = _load(baseline_path)
    current = _load(current_path)
    if not current:
        return "No current throughput numbers to compare."
    lines = ["| metric | previous | current | Δ |",
             "|---|---:|---:|---:|"]
    for metric in sorted(set(baseline) | set(current)):
        prev, cur = baseline.get(metric), current.get(metric)
        if prev is None or cur is None:
            shown = prev if cur is None else cur
            tag = "removed" if cur is None else "new"
            lines.append(f"| {metric} | "
                         f"{'' if prev is None else f'{prev:g}'} | "
                         f"{'' if cur is None else f'{cur:g}'} | {tag} |")
            continue
        if prev == 0:
            delta = "n/a"
        else:
            pct = (cur - prev) / prev * 100.0
            delta = f"{pct:+.1f}% {_direction(metric, pct)}".rstrip()
        lines.append(f"| {metric} | {prev:g} | {cur:g} | {delta} |")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 0
    print("### Throughput bench: previous vs current\n")
    print(compare(Path(argv[1]), Path(argv[2])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
