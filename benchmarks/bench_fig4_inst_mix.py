"""Fig 4 (+ §V-B): percentage of instruction types in each benchmark.

Paper: SPEC has more loads (GM 35.2% vs ~29%) and fewer stores (GM 11.5%
vs ~16%) than .NET/ASP.NET; SPEC branch shares are diverse (xalancbmk high,
FP programs low) while the managed suites are uniform.
"""

from repro import paperdata
from repro.harness.report import format_table, geomean


def _mix(c):
    n = c.instructions
    return (100 * c.branches / n, 100 * c.loads / n, 100 * c.stores / n)


def test_fig4_instruction_mix(benchmark, dotnet_i9, aspnet_i9, spec_i9,
                              emit):
    def run():
        out = {}
        for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                          ("speccpu", spec_i9)):
            out[suite] = {r.name: _mix(r.counters) for r in sr.results}
        return out

    mixes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for suite in ("dotnet", "aspnet", "speccpu"):
        for name, (b, l, s) in sorted(mixes[suite].items()):
            rows.append([f"{suite[:3]}:{name}", b, l, s])
    gms = {s: tuple(geomean([m[i] for m in mixes[s].values()])
                    for i in range(3)) for s in mixes}
    text = format_table(["benchmark", "branch %", "load %", "store %"],
                        rows, float_fmt="{:.1f}")
    text += "\n\ngeomeans (branch/load/store %):"
    for s, (b, l, st) in gms.items():
        text += f"\n  {s:8s} {b:5.1f} {l:5.1f} {st:5.1f}"
    text += (f"\npaper: SPEC loads GM {paperdata.SPEC_LOADS_GM} vs managed "
             f"~{paperdata.DOTNET_ASPNET_LOADS_GM}; SPEC stores GM "
             f"{paperdata.SPEC_STORES_GM} vs managed "
             f"~{paperdata.DOTNET_ASPNET_STORES_GM}")
    emit("fig4_instruction_mix", text)

    # Load/store GM orderings (§V-B).
    assert gms["speccpu"][1] > gms["dotnet"][1]
    assert gms["speccpu"][1] > gms["aspnet"][1]
    assert gms["speccpu"][2] < gms["dotnet"][2]
    assert gms["speccpu"][2] < gms["aspnet"][2]
    # Managed loads near 29%, SPEC near 35% (within a few points).
    assert abs(gms["speccpu"][1] - paperdata.SPEC_LOADS_GM) < 6
    assert abs(gms["aspnet"][1] - paperdata.DOTNET_ASPNET_LOADS_GM) < 6
    # SPEC branch diversity exceeds the managed suites'.
    spec_b = [m[0] for m in mixes["speccpu"].values()]
    managed_b = [m[0] for suite in ("dotnet", "aspnet")
                 for m in mixes[suite].values()]
    import numpy as np
    assert np.std(spec_b) > np.std(managed_b)
