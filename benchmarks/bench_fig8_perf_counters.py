"""Fig 8: raw performance-counter comparison on x86-64 (§V-E).

Paper claims encoded below: the instruction-memory interface (L1i, I-TLB)
is worse for ASP.NET/.NET than SPEC; ASP.NET has lower L1d MPKI than SPEC
(GM 15.9 vs 29), larger L2 MPKI (20.4 vs 11), lower LLC MPKI (0.16 vs
0.98); .NET microbenchmarks have much lower MPKIs overall (2.3/2.2/0.01);
ASP.NET CPI is significantly higher; the 'realistic' .NET categories
behave like ASP.NET.
"""

from repro import paperdata
from repro.harness.report import format_table, geomean


COUNTERS = (
    ("cpi", lambda c: c.cpi),
    ("branch_mpki", lambda c: c.mpki(c.branch_misses)),
    ("l1d_mpki", lambda c: c.mpki(c.l1d_misses)),
    ("l1i_mpki", lambda c: c.mpki(c.l1i_misses)),
    ("l2_mpki", lambda c: c.mpki(c.l2_misses)),
    ("llc_mpki", lambda c: c.mpki(c.llc_misses)),
    ("itlb_mpki", lambda c: c.mpki(c.itlb_misses)),
    ("dtlb_load_mpki", lambda c: c.mpki(c.dtlb_load_misses)),
)


def test_fig8_perf_counters(benchmark, dotnet_i9, aspnet_i9, spec_i9, emit):
    def run():
        gms = {}
        for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                          ("speccpu", spec_i9)):
            gms[suite] = {name: geomean([fn(r.counters) + 1e-3
                                         for r in sr.results])
                          for name, fn in COUNTERS}
        return gms

    gms = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, gms["dotnet"][name], gms["aspnet"][name],
             gms["speccpu"][name]] for name, _ in COUNTERS]
    text = format_table(["counter (GM)", ".NET", "ASP.NET", "SPEC"], rows)
    text += ("\n\npaper GMs: ASP.NET l1d 15.9 / l2 20.4 / llc 0.16; "
             "SPEC l1d 29 / l2 11 / llc 0.98; .NET l1d 2.3 / l1i 2.2 / "
             "llc 0.01\n(absolute values live in the capacity-scaled "
             "regime; orderings are the reproduced claim)")

    # Per-benchmark detail for the figure.
    detail = []
    for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                      ("speccpu", spec_i9)):
        for r in sr.results:
            c = r.counters
            detail.append([f"{suite[:3]}:{r.name}", c.cpi,
                           c.mpki(c.branch_misses), c.mpki(c.l1d_misses),
                           c.mpki(c.l1i_misses), c.mpki(c.l2_misses),
                           c.mpki(c.llc_misses), c.mpki(c.itlb_misses)])
    text += "\n\n" + format_table(
        ["benchmark", "cpi", "br", "l1d", "l1i", "l2", "llc", "itlb"],
        detail, float_fmt="{:.2f}")
    emit("fig8_perf_counters", text)

    # --- paper-shape assertions -------------------------------------
    # I-side: managed suites worse than SPEC on I-cache and I-TLB.
    assert gms["aspnet"]["l1i_mpki"] > gms["speccpu"]["l1i_mpki"] * 0.8
    assert gms["aspnet"]["itlb_mpki"] > 0.85 * gms["speccpu"]["itlb_mpki"]
    # D-side: ASP.NET L1d below SPEC, L2 above-or-near SPEC, LLC far
    # below SPEC.
    assert gms["aspnet"]["l1d_mpki"] < gms["speccpu"]["l1d_mpki"]
    assert gms["aspnet"]["l2_mpki"] > 0.8 * gms["speccpu"]["l2_mpki"]
    assert gms["aspnet"]["llc_mpki"] < 0.8 * gms["speccpu"]["llc_mpki"]
    # .NET micro: lowest MPKIs of the three suites.
    for m in ("l1d_mpki", "l2_mpki", "llc_mpki"):
        assert gms["dotnet"][m] < gms["aspnet"][m]
        assert gms["dotnet"][m] < gms["speccpu"][m]
    # CPI: ASP.NET significantly higher than SPEC.
    assert gms["aspnet"]["cpi"] > 0.9 * gms["speccpu"]["cpi"]
    # 'Realistic' .NET categories behave like ASP.NET (elevated I-side).
    realistic = {r.name: r.counters for r in dotnet_i9.results
                 if r.name in paperdata.REALISTIC_DOTNET_CATEGORIES}
    others_l1i = geomean(
        [r.counters.mpki(r.counters.l1i_misses) + 1e-3
         for r in dotnet_i9.results
         if r.name not in paperdata.REALISTIC_DOTNET_CATEGORIES])
    realistic_l1i = geomean([c.mpki(c.l1i_misses) + 1e-3
                             for c in realistic.values()])
    assert realistic_l1i > others_l1i
