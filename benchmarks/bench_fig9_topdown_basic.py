"""Fig 9: basic Top-Down profile for all benchmarks.

Paper: ASP.NET is significantly backend bound; neither .NET nor ASP.NET
shows a significant bad-speculation component; several .NET / ASP.NET
applications are significantly frontend bound.
"""

import numpy as np

from repro.harness.report import stacked_bar_chart


def test_fig9_topdown_basic(benchmark, dotnet_i9, aspnet_i9, spec_i9, emit):
    def run():
        rows = {}
        for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                          ("speccpu", spec_i9)):
            for r in sr.results:
                rows[f"{suite[:3]}:{r.name}"] = r.topdown.level1()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    labels = list(rows)
    series = {seg: [rows[l][seg] for l in labels]
              for seg in ("retiring", "bad_speculation", "frontend_bound",
                          "backend_bound")}
    text = stacked_bar_chart(labels, series,
                             title="Fig 9: Top-Down level 1 "
                                   "(slot fractions)", width=50)
    emit("fig9_topdown_basic", text)

    def suite_mean(prefix, seg):
        vals = [v[seg] for l, v in rows.items() if l.startswith(prefix)]
        return float(np.mean(vals))

    # Every profile sums to 1.
    for v in rows.values():
        assert abs(sum(v.values()) - 1.0) < 1e-6
    # ASP.NET significantly backend bound.
    assert suite_mean("asp", "backend_bound") > 0.25
    # Managed suites: low bad speculation.
    assert suite_mean("asp", "bad_speculation") < 0.25
    assert suite_mean("dot", "bad_speculation") < 0.25
    # Significant frontend-bound component for managed workloads.
    managed_fe = [v["frontend_bound"] for l, v in rows.items()
                  if l.startswith(("dot", "asp"))]
    assert max(managed_fe) > 0.35
    # Managed suites are more frontend bound than SPEC on average
    # (§ abstract: ".NET benchmarks are significantly more frontend
    # bound").
    assert (suite_mean("dot", "frontend_bound")
            + suite_mean("asp", "frontend_bound")) / 2 \
        > suite_mean("spe", "frontend_bound")
