"""Fig 10: breakdown of empty pipeline slots in the frontend and backend.

Paper (frontend): DSB/MITE bandwidth plus large latency contributions from
BTB re-steers, I-TLB and I-cache misses for most .NET/ASP.NET benchmarks;
MS-switches consistent across managed benchmarks (CLR code).
Paper (backend): ASP.NET is L3-bound; SPEC is more DRAM bound; D-cache
(L1) latency visible for ASP.NET and select .NET benchmarks.
"""

import numpy as np

from repro.harness.report import stacked_bar_chart


def test_fig10_topdown_breakdown(benchmark, dotnet_i9, aspnet_i9, spec_i9,
                                 emit):
    def run():
        fe, be = {}, {}
        for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                          ("speccpu", spec_i9)):
            for r in sr.results:
                key = f"{suite[:3]}:{r.name}"
                fe[key] = r.topdown.frontend_breakdown()
                be[key] = r.topdown.backend_breakdown()
        return fe, be

    fe, be = benchmark.pedantic(run, rounds=1, iterations=1)

    labels = list(fe)
    fe_series = {seg: [fe[l][seg] for l in labels]
                 for seg in next(iter(fe.values()))}
    be_series = {seg: [be[l][seg] for l in labels]
                 for seg in next(iter(be.values()))}
    text = stacked_bar_chart(labels, fe_series,
                             title="Fig 10 (top): FE-bound slot "
                                   "distribution", width=50)
    text += "\n\n" + stacked_bar_chart(
        labels, be_series,
        title="Fig 10 (bottom): BE-bound slot distribution", width=50)
    emit("fig10_topdown_breakdown", text)

    def mean(d, prefix, seg):
        vals = [v[seg] for k, v in d.items() if k.startswith(prefix)]
        return float(np.mean(vals))

    # Distributions are normalized.
    for v in list(fe.values()) + list(be.values()):
        assert abs(sum(v.values()) - 1.0) < 1e-6
    # FE: I-cache + resteers + I-TLB carry the managed frontend stalls.
    managed_fe_latency = (mean(fe, "asp", "icache_misses")
                          + mean(fe, "asp", "branch_resteers")
                          + mean(fe, "asp", "itlb_misses"))
    assert managed_fe_latency > 0.4
    # BE: ASP.NET's memory stalls lean on the LLC (L3 bound) far more
    # than SPEC's, which lean on DRAM.
    assert mean(be, "asp", "l3_bound") > mean(be, "spe", "l3_bound")
    assert mean(be, "spe", "dram_bound") > mean(be, "asp", "dram_bound")
    # SPEC memory programs: DRAM dominates their backend distribution.
    spec_dram = [v["dram_bound"] for k, v in be.items()
                 if k in ("spe:mcf", "spe:bwaves")]
    assert min(spec_dram) > 0.4
