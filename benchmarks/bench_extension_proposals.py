"""§VIII future-work proposals, implemented and quantified.

The paper's conclusion proposes cross-stack hardware assisted by runtime
metadata.  The simulator implements three of the proposals as opt-in
extension hardware; this bench measures each against its baseline:

1. **JIT-aware code prefetch + state transformation** ("hooks in the ISA
   ... provide metadata regarding JITed code pages ... preserve or
   transform the microarchitectural state"): fresh code pages are pulled
   into L2/LLC with I-TLB entries pre-installed, and PC-indexed predictor
   state follows re-tiered methods.
2. **Hardware GC offload** ("offloading a part of Garbage Collection to
   hardware for improved cache performance while keeping the overhead of
   memory management low").
3. **LLC placement** ("data placement strategies in LLC slices to reduce
   contention at the NoC").
"""

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_multicore, run_workload
from repro.runtime.gc import GcConfig, SERVER
from repro.uarch.machine import scaled
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20


def spec_of(name):
    for s in dotnet_category_specs() + aspnet_specs():
        if s.name == name:
            return s
    raise KeyError(name)


def test_extension_proposals(benchmark, fidelity, machine_i9, emit):
    fid = Fidelity(warmup_instructions=50_000,
                   measure_instructions=max(200_000,
                                            fidelity.measure_instructions))

    def run():
        from dataclasses import replace
        out = {}
        # --- 1: JIT metadata hardware --------------------------------
        # A JIT-heavy configuration (low ReadyToRun coverage) so the
        # cold-start term the proposal targets is actually present.
        jit_spec = replace(spec_of("CscBench"), prejit_frac=0.25)
        out["jit_base"] = run_workload(jit_spec, machine_i9, fid, seed=5)
        out["jit_ext"] = run_workload(
            jit_spec, scaled(machine_i9, jit_code_prefetch=True,
                             jit_state_transform=True), fid, seed=5)
        # --- 2: hardware GC -------------------------------------------
        gc_spec = spec_of("System.Collections")
        for hw in (False, True):
            out[f"gc_hw={hw}"] = run_workload(
                gc_spec, machine_i9, fid, seed=3,
                gc_config=GcConfig(flavor=SERVER,
                                   max_heap_bytes=2_000 * MB,
                                   hw_accelerated=hw))
        # --- 3: LLC placement -----------------------------------------
        llc_spec = spec_of("Plaintext")
        for placement in ("hashed", "balanced"):
            mc_fid = Fidelity(warmup_instructions=40_000,
                              measure_instructions=100_000)
            result, td, counters = run_multicore(
                llc_spec, scaled(machine_i9, llc_placement=placement),
                8, mc_fid)
            out[f"llc_{placement}"] = (result.llc.extra_latency,
                                       td.be_l3_bound)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    jb, je = data["jit_base"].counters, data["jit_ext"].counters
    rows = [
        ["JIT ext: L1i MPKI", jb.mpki(jb.l1i_misses),
         je.mpki(je.l1i_misses)],
        ["JIT ext: iTLB MPKI", jb.mpki(jb.itlb_misses),
         je.mpki(je.itlb_misses)],
        ["JIT ext: branch MPKI", jb.mpki(jb.branch_misses),
         je.mpki(je.branch_misses)],
        ["JIT ext: cycles", jb.cycles, je.cycles],
    ]
    gs, gh = data["gc_hw=False"].counters, data["gc_hw=True"].counters
    rows += [
        ["HW GC: cycles/alloc-tick",
         gs.cycles / max(1, gs.allocation_ticks),
         gh.cycles / max(1, gh.allocation_ticks)],
        ["HW GC: LLC MPKI", gs.mpki(gs.llc_misses),
         gh.mpki(gh.llc_misses)],
        ["HW GC: GC triggers", float(gs.gc_triggered),
         float(gh.gc_triggered)],
    ]
    rows += [
        ["LLC placement: contention delay (cyc)",
         data["llc_hashed"][0], data["llc_balanced"][0]],
        ["LLC placement: L3-bound slots",
         data["llc_hashed"][1], data["llc_balanced"][1]],
    ]
    text = format_table(["quantity", "baseline", "with extension"], rows)
    emit("extension_proposals", text)

    # Each proposal must pay off in its target metric.
    assert je.mpki(je.l1i_misses) <= jb.mpki(jb.l1i_misses)
    assert je.cycles <= jb.cycles * 1.02
    assert (gh.cycles / max(1, gh.allocation_ticks)
            < gs.cycles / max(1, gs.allocation_ticks))
    assert data["llc_balanced"][0] < data["llc_hashed"][0]
