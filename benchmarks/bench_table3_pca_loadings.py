"""Table III: loading factors of the top-3 metrics on the four PRCOs.

Paper values: variance shares 0.306 / 0.229 / 0.148 / 0.107 (79% total);
PRCO1 dominated by L2 / I-TLB / D-TLB-load MPKIs, PRCO2 by D-TLB-store
MPKI and memory bandwidths, PRCO3/4 by instruction-mix + branch metrics.
"""

from repro import paperdata
from repro.core.characterize import characterization_pca
from repro.harness.report import format_table


def test_table3_pca_loadings(benchmark, combined_matrix, emit):
    result = benchmark.pedantic(
        lambda: characterization_pca(combined_matrix, n_components=4),
        rounds=1, iterations=1)

    rows = []
    for prco in result.prcos:
        for rank, lr in enumerate(prco.top_metrics):
            rows.append([f"PRCO{prco.index}" if rank == 0 else "",
                         f"{prco.variance_share:.3f}" if rank == 0 else "",
                         lr.metric, lr.loading])
    text = format_table(["PRCO (variance)", "share", "metric", "loading"],
                        rows)
    text += ("\n\npaper: variance shares "
             f"{paperdata.TABLE3_VARIANCE_SHARES}, top-4 cumulative "
             f"{paperdata.TOP4_CUMULATIVE_VARIANCE:.2f}\n"
             f"measured: top-4 cumulative "
             f"{result.cumulative_variance_4:.3f}")
    emit("table3_pca_loadings", text)

    # Shape assertions: 4 PRCOs explain the bulk of the variance, and the
    # memory-hierarchy metrics load heavily on the leading components.
    assert result.cumulative_variance_4 > 0.55
    shares = [p.variance_share for p in result.prcos]
    assert shares == sorted(shares, reverse=True)
    leading_metrics = {lr.metric
                       for p in result.prcos[:2] for lr in p.top_metrics}
    memoryish = {"l2_mpki", "llc_mpki", "itlb_mpki", "dtlb_load_mpki",
                 "dtlb_store_mpki", "l1_dcache_mpki", "l1_icache_mpki",
                 "memory_bandwidth_read", "memory_bandwidth_write",
                 "branch_mpki", "page_faults"}
    assert leading_metrics & memoryish, (
        f"leading PRCOs should be memory/branch dominated, got "
        f"{leading_metrics}")
