"""Figs 5-6: PCA comparison of .NET / ASP.NET / SPEC CPU17 (§V-C).

Paper: the three suites' points do not coincide, and SPEC is much more
spread out — control-flow std 5.73x (.NET) / 4.73x (ASP.NET), memory std
1.71x / 1.27x.
"""

import numpy as np

from repro import paperdata
from repro.core.comparison import compare_suites
from repro.core.metrics import CONTROL_FLOW_IDS, MEMORY_IDS
from repro.harness.report import format_table, scatter_summary


def test_fig5_control_flow_pca(benchmark, combined_matrix, emit):
    cmp = benchmark.pedantic(
        lambda: compare_suites(combined_matrix, CONTROL_FLOW_IDS),
        rounds=1, iterations=1)

    groups = {g.label: g.points for g in cmp.groups}
    text = scatter_summary(groups, title="Fig 5: control-flow PCA "
                           "(metrics 2, 7)")
    r_dn = cmp.std_ratio("speccpu", "dotnet")
    r_asp = cmp.std_ratio("speccpu", "aspnet")
    text += ("\n\nstd ratios (SPEC vs):\n"
             + format_table(["suite", "measured", "paper"],
                            [["dotnet", r_dn,
                              paperdata.CONTROL_FLOW_STD_RATIO_SPEC_VS_DOTNET],
                             ["aspnet", r_asp,
                              paperdata.CONTROL_FLOW_STD_RATIO_SPEC_VS_ASPNET]]))
    emit("fig5_control_flow_pca", text)

    # Shape: SPEC clearly more diverse in control-flow behavior.
    assert r_dn > 1.5
    assert r_asp > 1.5
    # .NET and ASP.NET control-flow spreads are similar to each other
    # (§V-C: both dominated by CLR code) — both far tighter than SPEC's.
    s_dn = groups["dotnet"].std(axis=0).mean()
    s_asp = groups["aspnet"].std(axis=0).mean()
    s_spec = groups["speccpu"].std(axis=0).mean()
    assert s_spec > 1.5 * max(s_dn, s_asp)
    assert max(s_dn, s_asp) < 4 * min(s_dn, s_asp)


def test_fig6_memory_pca(benchmark, combined_matrix, emit):
    cmp = benchmark.pedantic(
        lambda: compare_suites(combined_matrix, MEMORY_IDS),
        rounds=1, iterations=1)

    groups = {g.label: g.points for g in cmp.groups}
    text = scatter_summary(groups, title="Fig 6: memory-behavior PCA "
                           "(metrics 8-14)")
    r_dn = cmp.std_ratio("speccpu", "dotnet")
    r_asp = cmp.std_ratio("speccpu", "aspnet")
    text += ("\n\nstd ratios (SPEC vs):\n"
             + format_table(["suite", "measured", "paper"],
                            [["dotnet", r_dn,
                              paperdata.MEMORY_STD_RATIO_SPEC_VS_DOTNET],
                             ["aspnet", r_asp,
                              paperdata.MEMORY_STD_RATIO_SPEC_VS_ASPNET]]))
    emit("fig6_memory_pca", text)

    # SPEC spreads wider in memory behavior too (paper: 1.71x / 1.27x).
    assert r_dn > 1.0
    assert r_asp > 0.8
    # The suites occupy different areas of PC space ("the data points
    # corresponding to their performance characteristics do not
    # coincide").
    c_spec = groups["speccpu"].mean(axis=0)
    c_dn = groups["dotnet"].mean(axis=0)
    c_asp = groups["aspnet"].mean(axis=0)
    assert np.linalg.norm(c_spec - c_dn) > 0.3
    assert np.linalg.norm(c_asp - c_dn) > 0.3
