"""Table IV: 8-element representative subsets for all three suites.

The paper picks one member per cluster at the 8-cluster level ("when more
than one choice was available, we picked one randomly"); we break ties in
favour of the paper's published picks, so agreement measures how often our
clustering puts the paper's representative in its own cluster.
"""

from repro import paperdata
from repro.core.characterize import characterization_pca
from repro.core.subset import select_representatives
from repro.harness.report import format_table


def _subset_for(suite_result, prefer):
    matrix = suite_result.metric_matrix()
    pca = characterization_pca(matrix, n_components=4)
    return select_representatives(matrix.names, pca.scores(4), k=8,
                                  prefer=prefer, seed=0)


def test_table4_subsets(benchmark, dotnet_i9, aspnet_i9, spec_full_i9,
                        emit):
    def run():
        return {
            "dotnet": _subset_for(dotnet_i9,
                                  paperdata.TABLE4_DOTNET_SUBSET),
            "aspnet": _subset_for(aspnet_i9,
                                  paperdata.TABLE4_ASPNET_SUBSET),
            # SPEC: cluster the full 23-program suite, as the paper did
            # ("we also created an 8-element subset of the SPEC CPU17
            # suite").
            "speccpu": _subset_for(spec_full_i9,
                                   paperdata.TABLE4_SPEC_SUBSET),
        }

    subsets = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"dotnet": paperdata.TABLE4_DOTNET_SUBSET,
             "aspnet": paperdata.TABLE4_ASPNET_SUBSET,
             "speccpu": paperdata.TABLE4_SPEC_SUBSET}

    rows = []
    overlap = {}
    for suite in ("dotnet", "aspnet", "speccpu"):
        ours = subsets[suite]
        theirs = paper[suite]
        overlap[suite] = len(set(ours) & set(theirs))
        for i in range(8):
            rows.append([suite if i == 0 else "", ours[i], theirs[i],
                         "*" if ours[i] in theirs else ""])
    text = format_table(["suite", "our pick", "paper pick",
                         "in paper subset"], rows)
    text += ("\n\noverlap with paper subsets: "
             + ", ".join(f"{s}={overlap[s]}/8" for s in overlap))
    emit("table4_subsets", text)

    assert all(len(s) == 8 for s in subsets.values())
    assert len(set(subsets["dotnet"])) == 8
    # The clustering must recover at least a third of the paper's picks
    # as its own cluster representatives.
    assert overlap["dotnet"] >= 3
    assert overlap["aspnet"] >= 2
    assert overlap["speccpu"] >= 3
