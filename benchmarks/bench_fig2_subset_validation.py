"""Fig 2: validation of the .NET representative subsets.

Paper: Subset A (8 of 44 categories) tracks the full suite's composite
cross-machine score to 98.7%; Subset B (64 of 2906 individual workloads)
to 96.3%; the optimum 8-category subset A(o) reaches 99.9%.

Scores are SPECspeed-style: time(Xeon baseline) / time(i9) per workload,
geomean-composited.
"""

import pytest

from repro import paperdata
from repro.core.characterize import characterization_pca
from repro.core.subset import (optimum_subset, select_representatives,
                               speed_scores, validate_subset)
from repro.harness.report import format_table



def _scores(result_target, result_base):
    return speed_scores(result_base.times(), result_target.times())


def test_fig2_subset_validation(benchmark, fidelity, dotnet_i9, dotnet_xeon,
                                micro_i9, micro_xeon, emit):
    def run():
        # --- Subset A: 8 of 44 categories ---------------------------
        matrix = dotnet_i9.metric_matrix()
        pca = characterization_pca(matrix, n_components=4)
        subset_a = select_representatives(
            matrix.names, pca.scores(4), k=8,
            prefer=paperdata.TABLE4_DOTNET_SUBSET, seed=0)
        scores_a = _scores(dotnet_i9, dotnet_xeon)
        val_a = validate_subset("Subset A (8/44 categories)", scores_a,
                                subset_a)
        # --- Subset A(o): optimum one-per-cluster pick ----------------
        opt = optimum_subset(matrix.names, pca.scores(4), scores_a, k=8,
                             max_exhaustive=200_000, seed=0)
        val_ao = validate_subset("Subset A(o) (optimum)", scores_a, opt)
        # --- Subset B: individual microbenchmarks --------------------
        matrix_b = micro_i9.metric_matrix()
        pca_b = characterization_pca(matrix_b, n_components=4)
        k_b = min(paperdata.SUBSET_B_SIZE, len(matrix_b) // 2)
        subset_b = select_representatives(matrix_b.names, pca_b.scores(4),
                                          k=k_b, seed=0)
        scores_b = _scores(micro_i9, micro_xeon)
        val_b = validate_subset(
            f"Subset B ({k_b}/{len(matrix_b)} workloads)", scores_b,
            subset_b)
        return val_a, val_ao, val_b

    val_a, val_ao, val_b = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [val_a.label, f"{val_a.accuracy_percent:.1f}%",
         f"{paperdata.SUBSET_A_ACCURACY}%"],
        [val_ao.label, f"{val_ao.accuracy_percent:.1f}%",
         f"{paperdata.SUBSET_A_OPT_ACCURACY}%"],
        [val_b.label, f"{val_b.accuracy_percent:.1f}%",
         f"{paperdata.SUBSET_B_ACCURACY}%"],
    ]
    text = format_table(["subset", "measured accuracy", "paper"], rows)
    text += (f"\n\ncomposite full-suite score (i9 vs xeon): "
             f"{val_a.composite_full:.3f}\n"
             f"subset A: {sorted(val_a.subset)}")
    emit("fig2_subset_validation", text)

    # Shape: representative subsets track the composite score closely,
    # and the optimum pick is at least as accurate as the random pick.
    assert val_a.accuracy_percent > 90.0
    assert val_ao.accuracy_percent >= val_a.accuracy_percent - 1e-9
    assert val_ao.accuracy_percent > 97.0
    assert val_b.accuracy_percent > 85.0
    assert val_a.composite_full > 1.0          # the i9 is faster
