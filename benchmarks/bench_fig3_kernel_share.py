"""Fig 3: fraction of kernel instructions in each benchmark.

Paper: ASP.NET executes a much larger share of kernel instructions than
.NET (networking stack); SPEC executes essentially none.
"""

from repro.harness.report import bar_chart, geomean


def _kernel_pct(counters):
    return 100.0 * counters.kernel_instructions / counters.instructions


def test_fig3_kernel_share(benchmark, dotnet_i9, aspnet_i9, spec_i9, emit):
    def run():
        rows = {}
        for suite, sr in (("dotnet", dotnet_i9), ("aspnet", aspnet_i9),
                          ("speccpu", spec_i9)):
            rows[suite] = {r.name: _kernel_pct(r.counters)
                           for r in sr.results}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    labels, values = [], []
    for suite in ("dotnet", "aspnet", "speccpu"):
        for name, v in sorted(rows[suite].items(), key=lambda kv: -kv[1]):
            labels.append(f"{suite[:3]}:{name}")
            values.append(v)
    text = bar_chart(labels, values,
                     title="kernel instruction share (%)", unit="%")
    means = {s: geomean([v + 0.01 for v in rows[s].values()])
             for s in rows}
    text += ("\n\ngeomean kernel %: "
             + ", ".join(f"{s}={v:.2f}" for s, v in means.items()))
    emit("fig3_kernel_share", text)

    aspnet_mean = sum(rows["aspnet"].values()) / len(rows["aspnet"])
    dotnet_mean = sum(rows["dotnet"].values()) / len(rows["dotnet"])
    spec_max = max(rows["speccpu"].values())
    # Paper shape: ASP.NET >> .NET average > SPEC ~ 0.
    assert aspnet_mean > 25.0
    assert aspnet_mean > dotnet_mean > spec_max
    assert spec_max < 1.0
    # Kernel-heavy .NET categories stand out (System.Diagnostics etc.).
    assert rows["dotnet"]["System.Diagnostics"] > 30.0
    assert rows["dotnet"]["System.Net"] > 10.0
    assert rows["dotnet"]["System.MathBenchmarks"] < 5.0
