"""Fig 13: correlation of runtime events with performance counters (§VII-A).

Methodology as in the paper: co-sampled runtime-event and counter series
(the paper used 1 ms buckets over seconds-long runs; we use
proportionally smaller buckets over the simulated window), Pearson
correlation with a small lag scan (the paper observed counter responses
10 us - 5 ms after the event).

Paper's Fig 13a (JIT-start events, max heap to suppress GC): positive
correlation with branch MPKI, LLC MPKI, page faults (+5-20%), L1i (~5%);
NEGATIVE correlation with useless prefetches (JITed pages are
prefetchable, prefetchers just stop at their boundaries).
Paper's Fig 13b (GC invocations, small heap): LLC MPKI down (~8%),
instructions up, IPC up.
"""

from repro.core.correlation import correlate_many, event_effect
from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_with_sampling
from repro.runtime.gc import GcConfig, WORKSTATION
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20
JIT_COUNTERS = ("branch_mpki", "llc_mpki", "page_faults", "l1i_mpki",
                "useless_prefetch_frac")
GC_COUNTERS = ("llc_mpki", "instructions", "ipc", "l1d_mpki")


def _fid(fidelity):
    # The correlation study wants a long steady-state window (the paper
    # sampled for the whole benchmark execution).
    return Fidelity(warmup_instructions=fidelity.warmup_instructions,
                    measure_instructions=max(
                        500_000, fidelity.measure_instructions))


def test_fig13a_jit_correlation(benchmark, fidelity, machine_i9, emit):
    # An allocation/JIT-rich workload without a kernel request loop: the
    # paper isolates JIT effects with a maxed heap; we additionally avoid
    # kernel-phase confounding in the (finer-grained) sample buckets.
    spec = next(s for s in dotnet_category_specs()
                if s.name == "System.Xml")

    def run():
        # Max heap -> GC suppressed, isolating JIT effects (paper §VII-A).
        r = run_with_sampling(
            spec, machine_i9, _fid(fidelity), sample_interval=5e-6,
            gc_config=GcConfig(flavor=WORKSTATION,
                               max_heap_bytes=20_000 * MB), seed=1)
        return r.samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    results = correlate_many(samples, "jit_started", JIT_COUNTERS,
                             max_lag=3)
    rows = [[c.counter, c.r, c.best_lag] for c in results]
    text = ("Fig 13a: JIT-start event correlations "
            "(System.Xml, max heap)\n")
    text += format_table(["counter", "pearson r", "lag (samples)"], rows)
    text += (f"\n\nJIT events in window: {sum(samples['jit_started']):g}; "
             f"samples: {len(samples)}")
    by = {c.counter: c.r for c in results}
    emit("fig13a_jit_correlation", text)

    # Paper shapes: cold-start counters rise with JIT activity...
    assert by["branch_mpki"] > 0.05
    assert by["l1i_mpki"] > 0.05
    assert by["llc_mpki"] > 0.0
    assert by["page_faults"] > 0.1
    # ...and the useless-prefetch *fraction* falls (data within JITed
    # pages is prefetchable — the paper's negative correlation).
    assert by["useless_prefetch_frac"] < 0.05


def test_fig13b_gc_correlation(benchmark, fidelity, machine_i9, emit):
    spec = next(s for s in aspnet_specs() if s.name == "DbFortunesRaw")

    def run():
        # Small heap -> frequent GC, highlighting its effects.
        r = run_with_sampling(
            spec, machine_i9, _fid(fidelity), sample_interval=5e-6,
            gc_config=GcConfig(flavor=WORKSTATION,
                               max_heap_bytes=200 * MB), seed=1)
        return r.samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    results = correlate_many(samples, "gc_triggered", GC_COUNTERS,
                             max_lag=3)
    rows = [[c.counter, c.r, c.best_lag] for c in results]
    effects = {c: event_effect(samples, "gc_triggered", c)
               for c in GC_COUNTERS}
    text = "Fig 13b: GC-invocation correlations (DbFortunesRaw, 200MiB)\n"
    text += format_table(["counter", "pearson r", "lag (samples)"], rows)
    text += "\n\nrelative effect in GC-active buckets:\n"
    text += format_table(["counter", "(active-idle)/idle"],
                         [[c, e] for c, e in effects.items()])
    text += (f"\n\nGC events in window: {sum(samples['gc_triggered']):g}; "
             f"paper: LLC MPKI ~-8%, instructions +, IPC +")
    emit("fig13b_gc_correlation", text)

    by = {c.counter: c.r for c in results}
    assert sum(samples["gc_triggered"]) >= 3
    # GC activity adds instructions to the stream.
    assert by["instructions"] > 0.0
    # The cache benefit: LLC MPKI is NOT positively correlated with GC
    # (paper: mildly negative, ~-8% effect).
    assert by["llc_mpki"] < 0.3
