"""Fig 7 (+ §V-D): x86-64 vs AArch64 comparison of the .NET suite.

Paper: Arm shows more variance in memory behavior (PRCO std ratios 1.19x /
2.32x) and raw performance gaps of ~80x on I-TLB MPKI and ~8x on LLC MPKI,
attributed to both microarchitecture (small TLBs) and the immature
.NET-on-Arm software stack.
"""

from repro import paperdata
from repro.core.comparison import compare_suites, relabelled
from repro.core.metrics import (CONTROL_FLOW_IDS, MEMORY_IDS,
                                RUNTIME_EVENT_IDS)
from repro.harness.report import format_table, geomean


def test_fig7_x86_vs_arm(benchmark, dotnet_i9, dotnet_arm, emit):
    def run():
        m_x86 = relabelled(dotnet_i9.metric_matrix(), "x86-64")
        m_arm = relabelled(dotnet_arm.metric_matrix(), "aarch64")
        both = m_x86.concat(m_arm)
        return {
            "control_flow": compare_suites(both, CONTROL_FLOW_IDS),
            "memory": compare_suites(both, MEMORY_IDS),
            "runtime": compare_suites(both, RUNTIME_EVENT_IDS),
        }

    cmps = benchmark.pedantic(run, rounds=1, iterations=1)

    paper_ratios = {"control_flow": paperdata.ARM_CONTROL_FLOW_STD_RATIO,
                    "memory": paperdata.ARM_MEMORY_STD_RATIO,
                    "runtime": paperdata.ARM_RUNTIME_STD_RATIO}
    rows = []
    for key, cmp in cmps.items():
        r1, r2 = cmp.std_ratio_per_pc("aarch64", "x86-64")
        p1, p2 = paper_ratios[key]
        rows.append([key, r1, p1, r2, p2])
    text = format_table(["metric set", "PRCO1 ratio", "paper",
                         "PRCO2 ratio", "paper"], rows)

    # Raw counter gaps (the 80x / 8x headline numbers).
    def suite_gm(sr, metric):
        return geomean([metric(r.counters) + 1e-4 for r in sr.results])

    itlb_x86 = suite_gm(dotnet_i9, lambda c: c.mpki(c.itlb_misses))
    itlb_arm = suite_gm(dotnet_arm, lambda c: c.mpki(c.itlb_misses))
    llc_x86 = suite_gm(dotnet_i9, lambda c: c.mpki(c.llc_misses))
    llc_arm = suite_gm(dotnet_arm, lambda c: c.mpki(c.llc_misses))
    itlb_factor = itlb_arm / itlb_x86
    llc_factor = llc_arm / llc_x86
    text += "\n\n" + format_table(
        ["counter", "x86 GM", "arm GM", "arm/x86", "paper factor"],
        [["iTLB MPKI", itlb_x86, itlb_arm, itlb_factor,
          paperdata.ARM_ITLB_MPKI_FACTOR],
         ["LLC MPKI", llc_x86, llc_arm, llc_factor,
          paperdata.ARM_LLC_MPKI_FACTOR]])
    emit("fig7_x86_vs_arm", text)

    # Shape: Arm is clearly worse on the I-TLB and worse at the LLC.
    #
    # Magnitude note (recorded in EXPERIMENTS.md): the paper's 80x I-TLB
    # gap "cannot be only due to microarchitecture differences" (§V-D) —
    # its own Table II Arm core has the *largest* secondary TLB.  We model
    # the microarchitecture plus code bloat from the immature Arm code
    # generator, which yields a factor of ~2-4x; the remaining order of
    # magnitude lives in cross-stack effects (code layout, huge-page
    # policy) outside this model, exactly the residue the paper assigns
    # to "differences in the software stack".
    assert itlb_factor > 1.5
    assert llc_factor > 1.05
    # Arm CPI is worse across the suite (slower clock aside, more stalls).
    cpi_x86 = suite_gm(dotnet_i9, lambda c: c.cpi)
    cpi_arm = suite_gm(dotnet_arm, lambda c: c.cpi)
    assert cpi_arm > cpi_x86
    # Memory-behavior variance is higher on Arm (paper: 1.19x / 2.32x).
    r1, r2 = cmps["memory"].std_ratio_per_pc("aarch64", "x86-64")
    assert max(r1, r2) > 1.0
