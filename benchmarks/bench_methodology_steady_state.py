"""§III-A methodology: warmup policy validation.

Not a numbered figure, but load-bearing for every other experiment: the
paper runs microbenchmarks 15 times discarding the first run, and finds
ASP.NET warmup periods by progressively reducing them under a 5% variance
criterion.  This bench executes both protocols against the simulator and
asserts they behave as the paper relies on them to.
"""

from repro.core.steady import (VarianceReport, find_min_warmup,
                               repeated_runs)
from repro.harness.report import format_table
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs


def test_methodology_steady_state(benchmark, machine_i9, emit):
    micro = next(s for s in dotnet_category_specs()
                 if s.name == "System.ComponentModel")
    server = next(s for s in aspnet_specs() if s.name == "Json")

    def run():
        report = repeated_runs(micro, machine_i9, runs=15,
                               window_instructions=30_000)
        # Acceptance threshold relaxed from the paper's 5%: our windows
        # are ~10^4x shorter than 1-second measurements, so bucket noise
        # is proportionally larger at equal steadiness.
        search = find_min_warmup(server, machine_i9, max_warmup=320_000,
                                 min_warmup=20_000, threshold=0.12,
                                 windows=3, window_instructions=40_000)
        return report, search

    report, search = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[w.index, w.cpi, w.l1i_mpki, w.jit_started]
            for w in report.windows]
    text = ("15-iteration protocol (System.ComponentModel), "
            "first run discarded:\n"
            + format_table(["window", "cpi", "l1i_mpki", "jit_events"],
                           rows))
    text += (f"\n\nsteady-state CV of CPI (discarding first): "
             f"{report.cpi_cv:.3%}  (acceptance: < 5%)")
    text += "\n\nASP.NET warmup search (Json):\n"
    text += format_table(
        ["warmup instr", "CPI CV", "steady?"],
        [[w, r.cpi_cv, r.is_steady(0.12)] for w, r in search.reports])
    text += (f"\nminimum acceptable warmup: "
             f"{search.min_warmup_instructions} instructions")
    emit("methodology_steady_state", text)

    # The cold first window is the outlier the protocol discards.
    cold = report.windows[0]
    assert cold.jit_started >= max(w.jit_started
                                   for w in report.windows[5:])
    # Steady state: our windows are ~10^4x shorter than real iterations,
    # so cache warmup spans several of them; the tail must satisfy the
    # paper's 5% criterion (the full 14-window set need not).
    tail = VarianceReport(windows=report.windows[7:],
                          discarded_first=False)
    assert tail.is_steady(0.05)
    # The warmup search terminates with an accepted setting.
    assert search.accepted(0.12)
    assert search.min_warmup_instructions <= 320_000
