"""Fig 1: hierarchical-clustering dendrogram of the 44 .NET categories.

The paper's tree splits System.Diagnostics and CscBench off from the other
42 categories at the top level (they are the suite's outliers: extreme
kernel share and extreme code footprint respectively).
"""

from repro.core.characterize import characterization_pca
from repro.core.clustering import ClusterTree, linkage_matrix
from repro.harness.report import format_table


def test_fig1_dendrogram(benchmark, dotnet_i9, emit):
    matrix = dotnet_i9.metric_matrix()

    def run():
        pca = characterization_pca(matrix, n_components=4)
        Z = linkage_matrix(pca.scores(4))
        return ClusterTree(Z, matrix.names)

    tree = benchmark.pedantic(run, rounds=1, iterations=1)

    text = tree.render(max_width=100)
    cuts = []
    for k in (2, 4, 8):
        groups = tree.cut(k)
        cuts.append([k, " | ".join(
            f"[{len(g)}] {g[0]}..." for g in groups)])
    text += "\n\ncuts:\n" + format_table(["k", "clusters (size, first)"],
                                         cuts)
    emit("fig1_dendrogram", text)

    assert len(tree.leaf_order()) == 44
    # Outlier check: at the 4-cluster level, System.Diagnostics and
    # CscBench must not sit in the bulk cluster.
    groups = tree.cut(4)
    bulk = max(groups, key=len)
    outliers = [g for g in groups if g is not bulk]
    outlier_names = {n for g in outliers for n in g}
    assert ("System.Diagnostics" in outlier_names
            or "CscBench" in outlier_names), (
        f"expected the Fig 1 outliers outside the bulk cluster; "
        f"outlier clusters: {outlier_names}")
