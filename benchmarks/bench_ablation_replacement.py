"""Ablation: cache replacement policy sensitivity.

DESIGN.md models every cache with true LRU.  This ablation quantifies how
much the suite orderings depend on that choice by re-running
representative benchmarks with FIFO and random replacement in the data
hierarchy: miss counts move, but the cross-suite *orderings* the paper's
claims rest on must not.
"""

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_workload
from repro.uarch.cache import ReplacementPolicy
from repro.uarch import pipeline as pl
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

BENCHMARKS = ("System.Runtime", "Json", "mcf")


def _run_with_policy(spec, machine, fid, policy):
    """Run a workload with the data caches using ``policy``.

    The pipeline builds its own caches, so the ablation re-plumbs them
    right after construction via the public attributes.
    """
    from repro.kernel.vm import VirtualMemory
    from repro.perf.counters import collect_counters
    from repro.perf.tracer import LttngTracer
    from repro.uarch.cache import Cache
    from repro.workloads.program import build_program

    vm = VirtualMemory()
    core = pl.Core(machine, vm)
    for attr in ("l1d", "l2", "llc"):
        old = getattr(core, attr)
        setattr(core, attr, Cache(old.name, old.size_bytes, old.line_size,
                                  old.ways, policy=policy))
    # Re-wire prefetchers to the replaced caches.
    core.l2_prefetcher.target = core.l2
    core.l1d_prefetcher.target = core.l1d
    core.set_hints(spec.hints())
    tracer = LttngTracer(machine.max_freq_hz)
    core.event_hook = tracer.hook
    program = build_program(spec, seed=3, code_bloat=machine.code_bloat)
    program.premap(vm)
    ops = program.ops()
    core.consume(ops, max_instructions=fid.warmup_instructions)
    core.reset_stats()
    tracer.clear()
    core.consume(ops, max_instructions=fid.measure_instructions)
    return collect_counters(core, tracer.counts)


def test_ablation_replacement_policy(benchmark, fidelity, machine_i9,
                                     emit):
    fid = Fidelity(warmup_instructions=60_000,
                   measure_instructions=120_000)
    specs = {s.name: s for s in (dotnet_category_specs() + aspnet_specs()
                                 + speccpu_specs())}

    def run():
        out = {}
        for name in BENCHMARKS:
            for policy in ReplacementPolicy.ALL:
                out[(name, policy)] = _run_with_policy(
                    specs[name], machine_i9, fid, policy)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARKS:
        for policy in ReplacementPolicy.ALL:
            c = data[(name, policy)]
            rows.append([name, policy, c.mpki(c.l1d_misses),
                         c.mpki(c.l2_misses), c.mpki(c.llc_misses), c.cpi])
    text = format_table(["benchmark", "policy", "l1d", "l2", "llc", "cpi"],
                        rows)
    emit("ablation_replacement_policy", text)

    # The headline cross-suite ordering must be policy-robust: SPEC's
    # memory monster out-misses the managed workloads at the LLC under
    # every policy.
    for policy in ReplacementPolicy.ALL:
        mcf = data[("mcf", policy)]
        micro = data[("System.Runtime", policy)]
        assert mcf.mpki(mcf.llc_misses) > micro.mpki(micro.llc_misses), \
            policy
    # LRU should not be materially worse than random anywhere.
    for name in BENCHMARKS:
        lru = data[(name, ReplacementPolicy.LRU)]
        rnd = data[(name, ReplacementPolicy.RANDOM)]
        assert lru.mpki(lru.l1d_misses) \
            <= rnd.mpki(rnd.l1d_misses) * 1.15, name
