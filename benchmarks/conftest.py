"""Shared fixtures for the experiment benches.

Each bench regenerates one of the paper's tables/figures.  Suite runs are
expensive, so they are computed once per session and shared.  Every bench
writes its rendered output to ``benchmarks/results/<name>.txt`` (and the
same text is in the captured stdout).

Fidelity is controlled by ``REPRO_BENCH_FIDELITY``:

* ``quick``  — fast sanity pass (small windows, 2 workloads/category);
* ``default``— the standard setting used for EXPERIMENTS.md;
* ``paper``  — largest windows, full 2906-workload corpus for Subset B.

``REPRO_BENCH_JOBS`` sets the worker-process count for suite runs
(results are bit-identical to serial; parallelism only changes
wall-clock time).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.harness.suite import SuiteResult, characterize_suite
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs, dotnet_workloads
from repro.workloads.speccpu import speccpu_specs

RESULTS_DIR = Path(__file__).parent / "results"

_FIDELITIES = {
    "quick": Fidelity(warmup_instructions=30_000,
                      measure_instructions=50_000,
                      workloads_per_category=2),
    "default": Fidelity(warmup_instructions=100_000,
                        measure_instructions=200_000,
                        workloads_per_category=4),
    "paper": Fidelity(warmup_instructions=200_000,
                      measure_instructions=500_000,
                      workloads_per_category=None),
}


def bench_fidelity() -> Fidelity:
    return _FIDELITIES[os.environ.get("REPRO_BENCH_FIDELITY", "default")]


@pytest.fixture(scope="session")
def fidelity() -> Fidelity:
    return bench_fidelity()


@pytest.fixture(scope="session")
def machine_i9():
    return get_machine("i9")


@pytest.fixture(scope="session")
def machine_xeon():
    return get_machine("xeon")


@pytest.fixture(scope="session")
def machine_arm():
    return get_machine("arm")


# ---------------------------------------------------------------------------
# Cached suite characterizations (the backbone of most figures).
#
# Runs are served from the content-addressed result store under
# benchmarks/.cache, so separate pytest invocations (and re-runs) share
# them.  Keys include a fingerprint of the simulator source tree, so
# editing anything under src/repro/ invalidates stale entries
# automatically — no manual cache deletion needed.
# ---------------------------------------------------------------------------

CACHE_DIR = Path(__file__).parent / ".cache"


def bench_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def _purge_legacy_cache() -> None:
    # The pre-`repro.exec` cache was flat `<tag>.pkl` pickles keyed only
    # by fidelity/machine — unsound across simulator changes and
    # superseded by the store's fingerprinted layout.  Drop any left
    # over so they can never be confused for live entries.
    for stale in CACHE_DIR.glob("*.pkl"):
        stale.unlink()


@pytest.fixture(scope="session")
def result_store() -> ResultStore:
    _purge_legacy_cache()
    return ResultStore(CACHE_DIR)


def _cached_suite(fidelity: Fidelity, specs, machine,
                  store: ResultStore) -> SuiteResult:
    return characterize_suite(specs, machine, fidelity,
                              jobs=bench_jobs(), store=store)


@pytest.fixture(scope="session")
def dotnet_i9(fidelity, machine_i9, result_store) -> SuiteResult:
    """All 44 .NET categories on the i9 (category-as-a-unit runs)."""
    return _cached_suite(fidelity, dotnet_category_specs(), machine_i9,
                         result_store)


@pytest.fixture(scope="session")
def aspnet_i9(fidelity, machine_i9, result_store) -> SuiteResult:
    """All 53 ASP.NET benchmarks on the i9."""
    return _cached_suite(fidelity, aspnet_specs(), machine_i9,
                         result_store)


@pytest.fixture(scope="session")
def spec_i9(fidelity, machine_i9, result_store) -> SuiteResult:
    """The Table IV SPEC CPU17 subset on the i9."""
    return _cached_suite(fidelity, speccpu_specs(subset_only=True),
                         machine_i9, result_store)


@pytest.fixture(scope="session")
def spec_full_i9(fidelity, machine_i9, result_store) -> SuiteResult:
    """All 23 distinct SPEC CPU17 programs (for the subset-creation
    experiment, which clusters the full suite)."""
    return _cached_suite(fidelity, speccpu_specs(), machine_i9,
                         result_store)


@pytest.fixture(scope="session")
def dotnet_xeon(fidelity, machine_xeon, result_store) -> SuiteResult:
    """The 44 categories on the baseline Xeon (for Fig 2 scores)."""
    return _cached_suite(fidelity, dotnet_category_specs(), machine_xeon,
                         result_store)


@pytest.fixture(scope="session")
def dotnet_arm(fidelity, machine_arm, result_store) -> SuiteResult:
    """The 44 categories on the Arm server (Fig 7)."""
    return _cached_suite(fidelity, dotnet_category_specs(), machine_arm,
                         result_store)


@pytest.fixture(scope="session")
def micro_workloads(fidelity):
    """Individual microbenchmarks for the Subset-B experiment."""
    return dotnet_workloads(per_category=fidelity.workloads_per_category)


@pytest.fixture(scope="session")
def micro_i9(fidelity, machine_i9, micro_workloads,
             result_store) -> SuiteResult:
    return _cached_suite(fidelity, micro_workloads, machine_i9,
                         result_store)


@pytest.fixture(scope="session")
def micro_xeon(fidelity, machine_xeon, micro_workloads,
               result_store) -> SuiteResult:
    return _cached_suite(fidelity, micro_workloads, machine_xeon,
                         result_store)


@pytest.fixture(scope="session")
def combined_matrix(dotnet_i9, aspnet_i9, spec_i9):
    """One MetricMatrix over all three suites (suite labels attached)."""
    return (dotnet_i9.metric_matrix()
            .concat(aspnet_i9.metric_matrix())
            .concat(spec_i9.metric_matrix()))


# ---------------------------------------------------------------------------
# Output helper
# ---------------------------------------------------------------------------

def write_result(name: str, text: str) -> str:
    """Persist a bench's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
    return text


@pytest.fixture
def emit():
    return write_result
