"""Simulator throughput: batched trace engine vs the legacy interpreter.

Not a paper figure — infrastructure tracking.  Measures sustained
simulated instructions per wall-clock second for one representative
workload per suite on both deployed consume paths:

* ``legacy`` — the tuple-at-a-time path (``REPRO_LEGACY_CONSUME=1``):
  build the workload program and generate + consume per-op tuples,
  every run.
* ``batched`` — the default path against a *warm* trace store: the op
  stream is decoded from the recorded SoA chunks and run through
  ``Core.consume_stream``; the workload program is never built.  This
  is what a second machine config of a multi-machine suite pays.

Both paths produce bit-identical results (asserted here per workload,
and exhaustively by tests/integration/test_batched_equivalence.py), so
the ratio is pure engine speed.  Timings use best-of-``_ROUNDS`` to
shave scheduler noise.

Results land in ``benchmarks/results/simulator_throughput.txt`` and —
for the perf trajectory from PR 2 on — in ``BENCH_throughput.json`` at
the repo root (uploaded as a CI artifact).
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc
from pathlib import Path

from repro.exec.store import ResultStore
from repro.exec.traces import TraceStore
from repro.harness.report import format_table
from repro.harness.runner import run_workload
from repro.harness.suite import characterize_suite
from repro.perf.trace_io import record, replay_buffers
from repro.trace import OP_BLOCK
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

REPO_ROOT = Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"

#: one representative workload per suite (paper suites: micro / ASP.NET /
#: SPEC CPU17)
_REPRESENTATIVES = (
    ("dotnet", dotnet_category_specs, "System.Runtime"),
    ("aspnet", aspnet_specs, "Json"),
    ("speccpu", speccpu_specs, "mcf"),
)

_ROUNDS = 5


def _best_of(fn, rounds: int = _ROUNDS) -> tuple[float, object]:
    """Best-of-N CPU seconds (robust against scheduler noise)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.process_time()
        out = fn()
        dt = time.process_time() - t0
        if dt < best:
            best, result = dt, out
    return best, result


#: top-level keys of BENCH_throughput.json, one per bench function
_SECTIONS = ("engine", "suite_wall_clock", "data_plane", "observability")


def _merge_json(section: str, data) -> dict:
    """Update one section of ``BENCH_throughput.json`` in place.

    The bench is several pytest functions writing one artifact; each
    owns a top-level key so partial runs never clobber the others.
    Keys outside ``_SECTIONS`` (pre-section layouts) are dropped.
    """
    try:
        payload = json.loads(JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload = {k: v for k, v in payload.items() if k in _SECTIONS}
    payload[section] = data
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                         + "\n")
    return payload


def test_simulator_throughput(fidelity, machine_i9, emit, tmp_path):
    store = TraceStore(tmp_path / "traces")
    rows = []
    payload = {
        "machine": machine_i9.name,
        "fidelity": {
            "warmup_instructions": fidelity.warmup_instructions,
            "measure_instructions": fidelity.measure_instructions,
        },
        "rounds": _ROUNDS,
        "workloads": {},
    }
    for suite, specs_fn, name in _REPRESENTATIVES:
        spec = next(s for s in specs_fn() if s.name == name)
        # Warm the trace store once (records the stream), so the timed
        # batched runs below measure the replay path.
        warm = run_workload(spec, machine_i9, fidelity, trace_store=store)
        # Interleave the engines round by round so slow system phases
        # penalize both paths alike.
        t_leg = t_bat = float("inf")
        legacy = batched = None
        for _ in range(_ROUNDS):
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     engine="legacy"), rounds=1)
            if dt < t_leg:
                t_leg, legacy = dt, res
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     trace_store=store), rounds=1)
            if dt < t_bat:
                t_bat, batched = dt, res
        # The two engines must agree exactly before their speeds are
        # comparable at all.
        assert batched.counters == legacy.counters == warm.counters
        assert batched.topdown == legacy.topdown
        instr = batched.counters.instructions
        ips_leg = instr / t_leg
        ips_bat = instr / t_bat
        ratio = ips_bat / ips_leg
        rows.append([suite, name, f"{ips_leg:,.0f}", f"{ips_bat:,.0f}",
                     f"{ratio:.2f}x"])
        payload["workloads"][name] = {
            "suite": suite,
            "instructions": instr,
            "legacy_instr_per_s": round(ips_leg),
            "batched_instr_per_s": round(ips_bat),
            "speedup": round(ratio, 3),
        }
    ratios = [w["speedup"] for w in payload["workloads"].values()]
    payload["min_speedup"] = min(ratios)
    _merge_json("engine", payload)

    text = ("Simulator throughput (measured instructions / CPU "
            f"second, best of {_ROUNDS}):\n"
            + format_table(
                ["suite", "workload", "legacy instr/s", "batched instr/s",
                 "speedup"], rows))
    text += ("\n\nlegacy = build + generate + consume per run; batched = "
             "warm-trace-store replay\n(the second machine config of a "
             "multi-machine suite never regenerates).\n"
             f"JSON written to {JSON_PATH.name}")
    emit("simulator_throughput", text)

    # Regression guard: the batched engine must beat the legacy
    # interpreter on every suite.  The bound is deliberately below the
    # steady-state speedup (~1.3-2x per suite on an idle machine, on
    # top of the shared-model optimizations that lifted the legacy
    # baseline itself ~1.6x over the PR-1 interpreter) because CI boxes
    # are noisy; the JSON artifact carries the exact numbers.
    assert payload["min_speedup"] > 1.05


def test_suite_wall_clock(fidelity, machine_i9, emit, tmp_path,
                          monkeypatch):
    """End-to-end ``characterize_suite`` wall clock at jobs=1 vs jobs=4.

    Measures what a campaign user sees: cold result stores (every job a
    miss), a shared warm trace store (generation excluded — it is paid
    once per trace regardless of scheduling), LPT ordering and warm
    workers active as deployed.  Workloads span all three paper suites
    so per-job runtimes are genuinely skewed.
    """
    dotnet = {"System.Runtime", "System.Linq", "System.Text.Json"}
    specs = [s for s in dotnet_category_specs() if s.name in dotnet]
    specs += [s for s in aspnet_specs() if s.name in ("Json", "Plaintext")]
    specs += [s for s in speccpu_specs() if s.name == "mcf"]
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    # Record every trace once so both job counts measure pure replay.
    warm = characterize_suite(specs, machine_i9, fidelity,
                              store=ResultStore(tmp_path / "warm"))
    assert not warm.failures
    wall = {}
    for n_jobs in (1, 4):
        store = ResultStore(tmp_path / f"store-j{n_jobs}")
        t0 = time.perf_counter()
        result = characterize_suite(specs, machine_i9, fidelity,
                                    jobs=n_jobs, store=store)
        wall[n_jobs] = time.perf_counter() - t0
        assert not result.failures
        assert result.times() == warm.times()
    speedup = wall[1] / wall[4]
    cores = len(os.sched_getaffinity(0))
    _merge_json("suite_wall_clock", {
        "workloads": len(specs),
        "cpu_cores": cores,
        "jobs_1_seconds": round(wall[1], 3),
        "jobs_4_seconds": round(wall[4], 3),
        "parallel_speedup": round(speedup, 3),
    })
    emit("suite_wall_clock",
         f"characterize_suite, {len(specs)} workloads, warm traces, "
         f"cold results, {cores} cores:\n"
         f"  jobs=1  {wall[1]:7.2f} s\n"
         f"  jobs=4  {wall[4]:7.2f} s   ({speedup:.2f}x)\n"
         f"JSON written to {JSON_PATH.name}")
    # 6 independent jobs on 4 workers: even with fork + IPC overhead a
    # real win must show — when the hardware can express one.  On a
    # core-starved box (1-2 CPUs) parallelism can only add overhead, so
    # there the numbers are report-only; the speedup bound is loose for
    # noisy CI runners.
    if cores >= 4:
        assert speedup > 1.2
    else:
        assert speedup > 0.5          # overhead must still be bounded


def test_observability_overhead(fidelity, machine_i9, emit, tmp_path):
    """Instrumentation cost: obs disabled (the default) vs fully enabled.

    The obs layer's contract is "observe, never perturb": the disabled
    guard is one module-global ``is`` check, and even fully enabled
    (span JSONL + phase-timer histograms on every decode/consume/seal)
    the same workload must stay bit-identical and within 2% of the
    disabled run's throughput.  Rounds are interleaved so slow system
    phases penalize both configurations alike, and this test uses more
    rounds than the others: it compares two nearly identical times, so
    the best-of floor must actually be reached on both sides — with too
    few rounds, scheduler noise (easily 5-15% on shared CI boxes) would
    dominate the sub-1% quantity under test.
    """
    from repro import obs

    spec = next(s for s in dotnet_category_specs()
                if s.name == "System.Runtime")
    store = TraceStore(tmp_path / "traces")
    warm = run_workload(spec, machine_i9, fidelity, trace_store=store)
    run_workload(spec, machine_i9, fidelity, trace_store=store)

    obs_dir = tmp_path / "obs"
    t_off = t_on = float("inf")
    off = on = None
    rounds = 0
    try:
        # Adaptive floor-seeking: at least 12 interleaved rounds, then
        # keep going (up to 30) while the measured gap is still above
        # 1% — a transient CPU spike on one side is out-raced by more
        # samples, while a *real* >2% overhead survives every round.
        # The within-round order alternates so slow monotonic drift
        # (allocator growth, thermal throttling) cannot systematically
        # tax whichever configuration runs second.
        while True:
            rounds += 1
            for enable in ((False, True) if rounds % 2 else (True, False)):
                if enable:
                    obs.configure(obs_dir)
                else:
                    obs.shutdown(dump=False)
                dt, res = _best_of(
                    lambda: run_workload(spec, machine_i9, fidelity,
                                         trace_store=store), rounds=1)
                if enable:
                    snap = obs.metrics_snapshot()
                    if dt < t_on:
                        t_on, on = dt, res
                elif dt < t_off:
                    t_off, off = dt, res
            if rounds >= 12 and (t_on <= t_off * 1.01 or rounds >= 30):
                break
    finally:
        obs.shutdown(dump=False)

    # Observation must not perturb: identical counters either way.
    assert off.counters == on.counters == warm.counters
    assert off.topdown == on.topdown
    # The enabled runs really did record: spans on disk, phase samples
    # in the registry.
    assert list(obs_dir.glob("spans-*.jsonl"))
    assert snap["histograms"]["sim.consume_buffer_seconds"]["count"] > 0

    instr = off.counters.instructions
    overhead_pct = (t_on - t_off) / t_off * 100.0
    _merge_json("observability", {
        "workload": spec.name,
        "instructions": instr,
        "rounds": rounds,
        "disabled_instr_per_s": round(instr / t_off),
        "enabled_instr_per_s": round(instr / t_on),
        "overhead_pct": round(overhead_pct, 2),
    })
    emit("observability_overhead",
         f"Observability overhead ({spec.name}, best of "
         f"{rounds}, interleaved):\n"
         f"  disabled  {instr / t_off:12,.0f} instr/s\n"
         f"  enabled   {instr / t_on:12,.0f} instr/s   "
         f"({overhead_pct:+.2f}%)\n"
         f"JSON written to {JSON_PATH.name}")
    # The acceptance bar: enabled observability costs < 2%.  Best-of
    # interleaved rounds keeps scheduler noise out of the comparison;
    # negative overhead just means the noise floor, not a real speedup.
    assert overhead_pct < 2.0


def _synthetic_trace(path, n_ops: int) -> None:
    """A block-op trace of ``n_ops`` records (~25 bytes each on disk)."""
    def ops():
        base = 0x4000_0000
        for i in range(n_ops):
            yield (OP_BLOCK, base + (i % 1024) * 64, 10, 48, False)
    record(ops(), path)


def _replay_peak_bytes(path, use_mmap: bool) -> tuple[int, int]:
    """(peak traced heap bytes, instructions) for one full streaming
    replay.

    ``tracemalloc`` counts allocations through the Python allocator —
    the whole-file ``read()`` of the in-memory path shows up, while
    mmap-backed pages (reclaimable page cache, dropped chunk by chunk
    via ``MADV_DONTNEED``) do not.  That is exactly the resident-set
    distinction the streaming path exists for.
    """
    gc.collect()
    tracemalloc.start()
    instructions = 0
    for buf in replay_buffers(path, use_mmap=use_mmap):
        instructions += buf.n_instructions
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, instructions


def test_data_plane_memory_and_latency(emit, tmp_path):
    """mmap streaming: bounded peak memory on long traces, no decode
    wall-clock regression on short ones."""
    long_path = tmp_path / "long.trace"
    short_path = tmp_path / "short.trace"
    _synthetic_trace(long_path, n_ops=400_000)      # ~10 MB on disk
    _synthetic_trace(short_path, n_ops=8_000)

    peak_mem, n_mem = _replay_peak_bytes(long_path, use_mmap=False)
    peak_map, n_map = _replay_peak_bytes(long_path, use_mmap=True)
    assert n_mem == n_map
    rss_ratio = peak_mem / peak_map

    t_mem, _ = _best_of(lambda: sum(
        b.n_instructions for b in replay_buffers(short_path,
                                                 use_mmap=False)))
    t_map, _ = _best_of(lambda: sum(
        b.n_instructions for b in replay_buffers(short_path,
                                                 use_mmap=True)))

    _merge_json("data_plane", {
        "long_trace_bytes": long_path.stat().st_size,
        "long_trace_instructions": n_map,
        "peak_heap_inmemory_bytes": peak_mem,
        "peak_heap_mmap_bytes": peak_map,
        "peak_reduction": round(rss_ratio, 2),
        "short_trace_bytes": short_path.stat().st_size,
        "short_decode_inmemory_s": round(t_mem, 6),
        "short_decode_mmap_s": round(t_map, 6),
    })
    emit("data_plane_memory",
         "Streaming replay peak heap (tracemalloc), "
         f"{long_path.stat().st_size / 1e6:.1f} MB trace:\n"
         f"  in-memory  {peak_mem / 1e6:8.2f} MB\n"
         f"  mmap       {peak_map / 1e6:8.2f} MB   "
         f"({rss_ratio:.0f}x smaller)\n"
         f"Short-trace decode (best of {_ROUNDS}): "
         f"in-memory {t_mem * 1e3:.2f} ms, mmap {t_map * 1e3:.2f} ms\n"
         f"JSON written to {JSON_PATH.name}")
    # The acceptance bar: >= 2x peak reduction on the long trace, and
    # the mmap path must not slow down short-trace decode (generous 2x
    # bound — both decode the same zero-copy columns; only the read
    # syscall pattern differs, and the times are sub-millisecond).
    assert rss_ratio >= 2.0
    assert t_map <= max(t_mem * 2.0, t_mem + 0.005)
