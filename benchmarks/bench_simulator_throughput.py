"""Simulator throughput: batched trace engine vs the legacy interpreter.

Not a paper figure — infrastructure tracking.  Measures sustained
simulated instructions per wall-clock second for one representative
workload per suite on both deployed consume paths:

* ``legacy`` — the tuple-at-a-time path (``REPRO_LEGACY_CONSUME=1``):
  build the workload program and generate + consume per-op tuples,
  every run.
* ``batched`` — the default path against a *warm* trace store: the op
  stream is decoded from the recorded SoA chunks and run through
  ``Core.consume_stream``; the workload program is never built.  This
  is what a second machine config of a multi-machine suite pays.
* ``vector`` — the same warm-replay path through the native columnar
  kernel (``repro.uarch.native``), the engine behind
  ``consume_stream(engine="vector")``.

All paths produce bit-identical results (asserted here per workload,
and exhaustively by tests/integration/test_batched_equivalence.py), so
the ratios are pure engine speed.  Timings use best-of-``_ROUNDS`` to
shave scheduler noise.

Results land in ``benchmarks/results/simulator_throughput.txt`` and —
for the perf trajectory from PR 2 on — in ``BENCH_throughput.json`` at
the repo root (uploaded as a CI artifact).
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc
from pathlib import Path

from repro.exec.store import ResultStore
from repro.exec.traces import TraceStore
from repro.harness.report import format_table
from repro.harness.runner import run_workload
from repro.harness.suite import characterize_suite
from repro.perf.trace_io import record, replay_buffers
from repro.trace import OP_BLOCK
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

REPO_ROOT = Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"

#: one representative workload per suite (paper suites: micro / ASP.NET /
#: SPEC CPU17)
_REPRESENTATIVES = (
    ("dotnet", dotnet_category_specs, "System.Runtime"),
    ("aspnet", aspnet_specs, "Json"),
    ("speccpu", speccpu_specs, "mcf"),
)

_ROUNDS = 5


def _best_of(fn, rounds: int = _ROUNDS) -> tuple[float, object]:
    """Best-of-N CPU seconds (robust against scheduler noise)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.process_time()
        out = fn()
        dt = time.process_time() - t0
        if dt < best:
            best, result = dt, out
    return best, result


#: top-level keys of BENCH_throughput.json, one per bench function
#: (``micro`` is shared by the two bench_micro_structures functions;
#: ``multicore`` is written by bench_fig11_fig12_core_scaling)
_SECTIONS = ("engine", "micro", "multicore", "suite_wall_clock",
             "data_plane", "observability")


def _merge_json(section: str, data, merge_section: bool = False) -> dict:
    """Update one section of ``BENCH_throughput.json`` in place.

    The bench is several pytest functions writing one artifact; each
    owns a top-level key so partial runs never clobber the others.
    Keys outside ``_SECTIONS`` (pre-section layouts) are dropped.
    ``merge_section`` updates the section's existing dict instead of
    replacing it — for sections owned by more than one bench function.
    """
    try:
        payload = json.loads(JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload = {k: v for k, v in payload.items() if k in _SECTIONS}
    if merge_section and isinstance(payload.get(section), dict):
        payload[section].update(data)
    else:
        payload[section] = data
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                         + "\n")
    return payload


def test_simulator_throughput(fidelity, machine_i9, emit, tmp_path):
    store = TraceStore(tmp_path / "traces")
    rows = []
    payload = {
        "machine": machine_i9.name,
        "fidelity": {
            "warmup_instructions": fidelity.warmup_instructions,
            "measure_instructions": fidelity.measure_instructions,
        },
        "rounds": _ROUNDS,
        "workloads": {},
    }
    from repro.uarch import native
    for suite, specs_fn, name in _REPRESENTATIVES:
        spec = next(s for s in specs_fn() if s.name == name)
        # Warm the trace store once (records the stream), so the timed
        # batched/vector runs below measure the replay path.
        warm = run_workload(spec, machine_i9, fidelity, trace_store=store)
        # Interleave the engines round by round so slow system phases
        # penalize all paths alike.
        t_leg = t_bat = t_vec = float("inf")
        legacy = batched = vector = None
        for _ in range(_ROUNDS):
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     engine="legacy"), rounds=1)
            if dt < t_leg:
                t_leg, legacy = dt, res
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     trace_store=store), rounds=1)
            if dt < t_bat:
                t_bat, batched = dt, res
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     trace_store=store, engine="vector"),
                rounds=1)
            if dt < t_vec:
                t_vec, vector = dt, res
        # The engines must agree exactly before their speeds are
        # comparable at all.
        assert batched.counters == legacy.counters == warm.counters
        assert vector.counters == legacy.counters
        assert batched.topdown == legacy.topdown == vector.topdown
        instr = batched.counters.instructions
        ips_leg = instr / t_leg
        ips_bat = instr / t_bat
        ips_vec = instr / t_vec
        ratio = ips_bat / ips_leg
        vec_ratio = ips_vec / ips_leg
        rows.append([suite, name, f"{ips_leg:,.0f}", f"{ips_bat:,.0f}",
                     f"{ips_vec:,.0f}", f"{ratio:.2f}x",
                     f"{vec_ratio:.2f}x"])
        payload["workloads"][name] = {
            "suite": suite,
            "instructions": instr,
            "legacy_instr_per_s": round(ips_leg),
            "batched_instr_per_s": round(ips_bat),
            "vector_instr_per_s": round(ips_vec),
            "speedup": round(ratio, 3),
            "vector_speedup": round(vec_ratio, 3),
        }
    ratios = [w["speedup"] for w in payload["workloads"].values()]
    payload["min_speedup"] = min(ratios)
    vec_ratios = [w["vector_speedup"] for w in payload["workloads"].values()]
    payload["min_vector_speedup"] = min(vec_ratios)
    payload["native_kernel"] = native.available()
    _merge_json("engine", payload)

    text = ("Simulator throughput (measured instructions / CPU "
            f"second, best of {_ROUNDS}):\n"
            + format_table(
                ["suite", "workload", "legacy instr/s", "batched instr/s",
                 "vector instr/s", "batched", "vector"], rows))
    text += ("\n\nlegacy = build + generate + consume per run; batched/"
             "vector = warm-trace-store replay\n(the second machine "
             "config of a multi-machine suite never regenerates).\n"
             f"JSON written to {JSON_PATH.name}")
    emit("simulator_throughput", text)

    # Regression guard: the batched engine must beat the legacy
    # interpreter on every suite.  The bound is deliberately below the
    # steady-state speedup (~1.3-2x per suite on an idle machine, on
    # top of the shared-model optimizations that lifted the legacy
    # baseline itself ~1.6x over the PR-1 interpreter) because CI boxes
    # are noisy; the JSON artifact carries the exact numbers.
    assert payload["min_speedup"] > 1.05
    if native.available():
        # The native columnar kernel targets >=10x over legacy at
        # default fidelity (the committed JSON carries the measured
        # numbers, and the compare job gates the ratios PR over PR).
        # This inline gate is much looser: quick fidelity amortizes
        # the per-run export/writeback cost over ~4x fewer
        # instructions (mcf barely clears 4x there) and CI runners
        # are noisy.
        assert payload["min_vector_speedup"] > 3.0


def test_suite_wall_clock(fidelity, machine_i9, emit, tmp_path,
                          monkeypatch):
    """End-to-end ``characterize_suite`` wall clock at jobs=1 vs jobs=4.

    Measures what a campaign user sees: cold result stores (every job a
    miss), a shared warm trace store (generation excluded — it is paid
    once per trace regardless of scheduling), LPT ordering and warm
    workers active as deployed.  Workloads span all three paper suites
    so per-job runtimes are genuinely skewed.
    """
    dotnet = {"System.Runtime", "System.Linq", "System.Text.Json"}
    specs = [s for s in dotnet_category_specs() if s.name in dotnet]
    specs += [s for s in aspnet_specs() if s.name in ("Json", "Plaintext")]
    specs += [s for s in speccpu_specs() if s.name == "mcf"]
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    # Record every trace once so both job counts measure pure replay.
    warm = characterize_suite(specs, machine_i9, fidelity,
                              store=ResultStore(tmp_path / "warm"))
    assert not warm.failures
    wall = {}
    for n_jobs in (1, 4):
        store = ResultStore(tmp_path / f"store-j{n_jobs}")
        t0 = time.perf_counter()
        result = characterize_suite(specs, machine_i9, fidelity,
                                    jobs=n_jobs, store=store)
        wall[n_jobs] = time.perf_counter() - t0
        assert not result.failures
        assert result.times() == warm.times()
    speedup = wall[1] / wall[4]
    cores = len(os.sched_getaffinity(0))
    _merge_json("suite_wall_clock", {
        "workloads": len(specs),
        "cpu_cores": cores,
        "jobs_1_seconds": round(wall[1], 3),
        "jobs_4_seconds": round(wall[4], 3),
        "parallel_speedup": round(speedup, 3),
    })
    emit("suite_wall_clock",
         f"characterize_suite, {len(specs)} workloads, warm traces, "
         f"cold results, {cores} cores:\n"
         f"  jobs=1  {wall[1]:7.2f} s\n"
         f"  jobs=4  {wall[4]:7.2f} s   ({speedup:.2f}x)\n"
         f"JSON written to {JSON_PATH.name}")
    # 6 independent jobs on 4 workers: even with fork + IPC overhead a
    # real win must show — when the hardware can express one.  On a
    # core-starved box (1-2 CPUs) parallelism can only add overhead, so
    # there the numbers are report-only; the speedup bound is loose for
    # noisy CI runners.
    if cores >= 4:
        assert speedup > 1.2
    else:
        assert speedup > 0.5          # overhead must still be bounded


def test_observability_overhead(fidelity, machine_i9, emit, tmp_path):
    """Instrumentation cost: obs disabled (the default) vs fully enabled.

    The obs layer's contract is "observe, never perturb": the disabled
    guard is one module-global ``is`` check, and even fully enabled
    (span JSONL + phase-timer histograms on every decode/consume/seal)
    the same workload must stay bit-identical and cost < 2% of the
    disabled run's throughput.

    Methodology: call census x per-primitive cost.  Two earlier
    revisions tried to read the overhead off end-to-end A/B timings —
    first adaptive best-of (compares two *minima*, whose gap is itself
    noise-distributed; the committed artifact once showed -3.09%
    "overhead"), then an interleaved median-of-16 with paired rounds.
    An A/A control (both arms disabled, same schedule) still showed a
    ±5% phantom: run-to-run CPU-time variance of the full workload is
    ~25%, so no arrangement of ~0.6s runs resolves a quantity that a
    call census puts near 0.01%.  Instead this bench measures the two
    ingredients separately, each where it is actually measurable:

    * the **census** — spans emitted, histogram samples, counter
      increments in one enabled run — is deterministic (same trace,
      same chunking, every time);
    * the **per-call primitive cost** comes from a tight loop over the
      real span/observe paths (JSONL emission included), stable to a
      few percent because each sample is microseconds, not seconds.

    ``overhead = census x cost / median run time`` then has noise only
    in the denominator, where ±5% on a ~0.01% quantity is irrelevant.
    A gross regression (say a per-op span — 300k extra calls) shows up
    in the census itself, not in timing luck.
    """
    import statistics

    from repro import obs

    spec = next(s for s in dotnet_category_specs()
                if s.name == "System.Runtime")
    store = TraceStore(tmp_path / "traces")
    warm = run_workload(spec, machine_i9, fidelity, trace_store=store)
    run_workload(spec, machine_i9, fidelity, trace_store=store)

    # Denominator: median CPU time of the disabled (default) config.
    rounds = 5
    samples = []
    for _ in range(rounds):
        t0 = time.process_time()
        off = run_workload(spec, machine_i9, fidelity, trace_store=store)
        samples.append(time.process_time() - t0)
    t_run = statistics.median(samples)

    # Census run with the FULL observatory: spans + metrics + the
    # time-series sampler, plus (when the native kernel is present)
    # the vector engine's per-op-kind retirement telemetry — every
    # collector this repo has, all at once, and still bit-identical.
    from repro.obs import timeseries
    from repro.uarch import native as native_mod

    obs_dir = tmp_path / "obs"
    obs.configure(obs_dir, series=True)
    try:
        on = run_workload(spec, machine_i9, fidelity, trace_store=store)
        on_vec = None
        if native_mod.available():
            on_vec = run_workload(spec, machine_i9, fidelity,
                                  trace_store=store, engine="vector")
        snap = obs.metrics_snapshot()
        obs.flush()
        span_calls = sum(len(p.read_text().splitlines())
                         for p in obs_dir.glob("spans-*.jsonl"))
        hist_samples = sum(h["count"]
                           for h in snap["histograms"].values())
        # Runner counters are unit increments, so the summed value is
        # the call count — except the native retirement counters,
        # which bulk-add thousands of ops in one call per writeback
        # drain (that batching is exactly why per-op telemetry is
        # affordable).  Census those by call count: one drain per
        # writeback, <= 6 adds each.
        counter_adds = round(sum(
            v for k, v in snap["counters"].items()
            if not k.startswith("native.ops_retired")))
        drains = snap["histograms"].get(
            "native.writeback_seconds", {}).get("count", 0)
        counter_adds += 6 * drains

        # Per-call primitive costs over the live paths (span cost
        # includes serialization + buffered JSONL emission; the timer
        # pattern around observe matches the phase-timer call sites).
        n = 20_000
        t0 = time.process_time()
        for _ in range(n):
            with obs.span("bench.overhead_probe"):
                pass
        span_s = (time.process_time() - t0) / n
        t0 = time.process_time()
        for _ in range(n):
            t = time.perf_counter()
            obs.observe("bench.overhead_probe_seconds",
                        time.perf_counter() - t)
        observe_s = (time.process_time() - t0) / n
    finally:
        obs.shutdown(dump=False)

    # Observation must not perturb: identical counters either way —
    # including the native vector engine with retirement telemetry on.
    assert off.counters == on.counters == warm.counters
    assert off.topdown == on.topdown
    if on_vec is not None:
        assert on_vec.counters == off.counters
        assert on_vec.topdown == off.topdown
        # the kernel's per-kind retirement census landed in the registry
        # and tallies exactly the instruction count it simulated
        assert snap["counters"]["native.ops_retired"] > 0
    # The census run really did record: spans on disk, phase samples
    # in the registry, and the sampler's final flush in the ring.
    assert span_calls > 0
    assert snap["histograms"]["sim.consume_buffer_seconds"]["count"] > 0
    series_samples = sum(
        len(timeseries.load_series(p))
        for p in timeseries.series_files(obs_dir))
    assert series_samples > 0

    instr = off.counters.instructions
    # add() is a dict upsert like observe() minus the two clock reads;
    # observe_s upper-bounds it.
    # A ring sample is one registry snapshot JSON-serialized and
    # appended — the same order of work as a span emission, and there
    # is roughly one per second of run regardless of workload size.
    overhead_s = (span_calls * span_s
                  + (hist_samples + counter_adds) * observe_s
                  + series_samples * span_s)
    overhead_pct = overhead_s / t_run * 100.0
    _merge_json("observability", {
        "workload": spec.name,
        "instructions": instr,
        "rounds": rounds,
        "disabled_instr_per_s": round(instr / t_run),
        "span_calls": span_calls,
        "histogram_samples": hist_samples,
        "counter_adds": counter_adds,
        "series_samples": series_samples,
        "native_telemetry": on_vec is not None,
        "span_us": round(span_s * 1e6, 2),
        "observe_us": round(observe_s * 1e6, 3),
        "overhead_pct": round(overhead_pct, 4),
    })
    emit("observability_overhead",
         f"Observability overhead ({spec.name}, census x primitive "
         f"cost over median-of-{rounds} run time):\n"
         f"  disabled  {instr / t_run:12,.0f} instr/s\n"
         f"  census    {span_calls} spans x {span_s * 1e6:.1f}us + "
         f"{hist_samples + counter_adds} metric calls x "
         f"{observe_s * 1e6:.2f}us\n"
         f"  overhead  {overhead_pct:.4f}% of run time\n"
         f"JSON written to {JSON_PATH.name}")
    # The acceptance bar: enabled observability costs < 2% of run
    # time.  The measured figure is ~0.01-0.05%; the headroom is for
    # slower span sinks, not for new per-op call sites.
    assert overhead_pct < 2.0


def _synthetic_trace(path, n_ops: int) -> None:
    """A block-op trace of ``n_ops`` records (~25 bytes each on disk)."""
    def ops():
        base = 0x4000_0000
        for i in range(n_ops):
            yield (OP_BLOCK, base + (i % 1024) * 64, 10, 48, False)
    record(ops(), path)


def _replay_peak_bytes(path, use_mmap: bool) -> tuple[int, int]:
    """(peak traced heap bytes, instructions) for one full streaming
    replay.

    ``tracemalloc`` counts allocations through the Python allocator —
    the whole-file ``read()`` of the in-memory path shows up, while
    mmap-backed pages (reclaimable page cache, dropped chunk by chunk
    via ``MADV_DONTNEED``) do not.  That is exactly the resident-set
    distinction the streaming path exists for.
    """
    gc.collect()
    tracemalloc.start()
    instructions = 0
    for buf in replay_buffers(path, use_mmap=use_mmap):
        instructions += buf.n_instructions
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, instructions


def test_data_plane_memory_and_latency(emit, tmp_path):
    """mmap streaming: bounded peak memory on long traces, no decode
    wall-clock regression on short ones."""
    long_path = tmp_path / "long.trace"
    short_path = tmp_path / "short.trace"
    _synthetic_trace(long_path, n_ops=400_000)      # ~10 MB on disk
    _synthetic_trace(short_path, n_ops=8_000)

    peak_mem, n_mem = _replay_peak_bytes(long_path, use_mmap=False)
    peak_map, n_map = _replay_peak_bytes(long_path, use_mmap=True)
    assert n_mem == n_map
    rss_ratio = peak_mem / peak_map

    t_mem, _ = _best_of(lambda: sum(
        b.n_instructions for b in replay_buffers(short_path,
                                                 use_mmap=False)))
    t_map, _ = _best_of(lambda: sum(
        b.n_instructions for b in replay_buffers(short_path,
                                                 use_mmap=True)))

    _merge_json("data_plane", {
        "long_trace_bytes": long_path.stat().st_size,
        "long_trace_instructions": n_map,
        "peak_heap_inmemory_bytes": peak_mem,
        "peak_heap_mmap_bytes": peak_map,
        "peak_reduction": round(rss_ratio, 2),
        "short_trace_bytes": short_path.stat().st_size,
        "short_decode_inmemory_s": round(t_mem, 6),
        "short_decode_mmap_s": round(t_map, 6),
    })
    emit("data_plane_memory",
         "Streaming replay peak heap (tracemalloc), "
         f"{long_path.stat().st_size / 1e6:.1f} MB trace:\n"
         f"  in-memory  {peak_mem / 1e6:8.2f} MB\n"
         f"  mmap       {peak_map / 1e6:8.2f} MB   "
         f"({rss_ratio:.0f}x smaller)\n"
         f"Short-trace decode (best of {_ROUNDS}): "
         f"in-memory {t_mem * 1e3:.2f} ms, mmap {t_map * 1e3:.2f} ms\n"
         f"JSON written to {JSON_PATH.name}")
    # The acceptance bar: >= 2x peak reduction on the long trace, and
    # the mmap path must not slow down short-trace decode (generous 2x
    # bound — both decode the same zero-copy columns; only the read
    # syscall pattern differs, and the times are sub-millisecond).
    assert rss_ratio >= 2.0
    assert t_map <= max(t_mem * 2.0, t_mem + 0.005)
