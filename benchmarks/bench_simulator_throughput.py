"""Simulator throughput: batched trace engine vs the legacy interpreter.

Not a paper figure — infrastructure tracking.  Measures sustained
simulated instructions per wall-clock second for one representative
workload per suite on both deployed consume paths:

* ``legacy`` — the tuple-at-a-time path (``REPRO_LEGACY_CONSUME=1``):
  build the workload program and generate + consume per-op tuples,
  every run.
* ``batched`` — the default path against a *warm* trace store: the op
  stream is decoded from the recorded SoA chunks and run through
  ``Core.consume_stream``; the workload program is never built.  This
  is what a second machine config of a multi-machine suite pays.

Both paths produce bit-identical results (asserted here per workload,
and exhaustively by tests/integration/test_batched_equivalence.py), so
the ratio is pure engine speed.  Timings use best-of-``_ROUNDS`` to
shave scheduler noise.

Results land in ``benchmarks/results/simulator_throughput.txt`` and —
for the perf trajectory from PR 2 on — in ``BENCH_throughput.json`` at
the repo root (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exec.traces import TraceStore
from repro.harness.report import format_table
from repro.harness.runner import run_workload
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

REPO_ROOT = Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"

#: one representative workload per suite (paper suites: micro / ASP.NET /
#: SPEC CPU17)
_REPRESENTATIVES = (
    ("dotnet", dotnet_category_specs, "System.Runtime"),
    ("aspnet", aspnet_specs, "Json"),
    ("speccpu", speccpu_specs, "mcf"),
)

_ROUNDS = 5


def _best_of(fn, rounds: int = _ROUNDS) -> tuple[float, object]:
    """Best-of-N CPU seconds (robust against scheduler noise)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.process_time()
        out = fn()
        dt = time.process_time() - t0
        if dt < best:
            best, result = dt, out
    return best, result


def test_simulator_throughput(fidelity, machine_i9, emit, tmp_path):
    store = TraceStore(tmp_path / "traces")
    rows = []
    payload = {
        "machine": machine_i9.name,
        "fidelity": {
            "warmup_instructions": fidelity.warmup_instructions,
            "measure_instructions": fidelity.measure_instructions,
        },
        "rounds": _ROUNDS,
        "workloads": {},
    }
    for suite, specs_fn, name in _REPRESENTATIVES:
        spec = next(s for s in specs_fn() if s.name == name)
        # Warm the trace store once (records the stream), so the timed
        # batched runs below measure the replay path.
        warm = run_workload(spec, machine_i9, fidelity, trace_store=store)
        # Interleave the engines round by round so slow system phases
        # penalize both paths alike.
        t_leg = t_bat = float("inf")
        legacy = batched = None
        for _ in range(_ROUNDS):
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     engine="legacy"), rounds=1)
            if dt < t_leg:
                t_leg, legacy = dt, res
            dt, res = _best_of(
                lambda: run_workload(spec, machine_i9, fidelity,
                                     trace_store=store), rounds=1)
            if dt < t_bat:
                t_bat, batched = dt, res
        # The two engines must agree exactly before their speeds are
        # comparable at all.
        assert batched.counters == legacy.counters == warm.counters
        assert batched.topdown == legacy.topdown
        instr = batched.counters.instructions
        ips_leg = instr / t_leg
        ips_bat = instr / t_bat
        ratio = ips_bat / ips_leg
        rows.append([suite, name, f"{ips_leg:,.0f}", f"{ips_bat:,.0f}",
                     f"{ratio:.2f}x"])
        payload["workloads"][name] = {
            "suite": suite,
            "instructions": instr,
            "legacy_instr_per_s": round(ips_leg),
            "batched_instr_per_s": round(ips_bat),
            "speedup": round(ratio, 3),
        }
    ratios = [w["speedup"] for w in payload["workloads"].values()]
    payload["min_speedup"] = min(ratios)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    text = ("Simulator throughput (measured instructions / CPU "
            f"second, best of {_ROUNDS}):\n"
            + format_table(
                ["suite", "workload", "legacy instr/s", "batched instr/s",
                 "speedup"], rows))
    text += ("\n\nlegacy = build + generate + consume per run; batched = "
             "warm-trace-store replay\n(the second machine config of a "
             "multi-machine suite never regenerates).\n"
             f"JSON written to {JSON_PATH.name}")
    emit("simulator_throughput", text)

    # Regression guard: the batched engine must beat the legacy
    # interpreter on every suite.  The bound is deliberately below the
    # steady-state speedup (~1.3-2x per suite on an idle machine, on
    # top of the shared-model optimizations that lifted the legacy
    # baseline itself ~1.6x over the PR-1 interpreter) because CI boxes
    # are noisy; the JSON artifact carries the exact numbers.
    assert payload["min_speedup"] > 1.05
