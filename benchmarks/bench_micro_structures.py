"""Per-structure and per-op-kind steady-state cost microbenchmarks.

Not a paper figure — engine-level cost accounting.  Two layers:

* **Structure probes** — tight loops over one microarchitectural
  structure at a time (cache, TLB hierarchy, branch unit, prefetchers),
  split into hit-only and mixed-miss regimes so the steady-state cost of
  the fast path and the eviction/walk path are tracked separately.
* **Engine CPI** — single-op-kind synthetic traces (blocks, hitting
  loads, missing loads, branches) run through the legacy interpreter
  and the vector engine, yielding a simulator-CPI (ns per simulated
  instruction) per op kind per engine and the vector-vs-legacy speedup.

Timings are best-of-``_ROUNDS`` ns/op; results land in the ``micro``
section of ``BENCH_throughput.json``.  CI gates only on the ``*_speedup``
ratios (see ``compare_throughput.py --gate-suffix``): both sides of a
ratio are measured in the same process on the same box, so machine speed
cancels out, while raw ns/op values are report-only.
"""

from __future__ import annotations

import random
import time

from bench_simulator_throughput import _merge_json

from repro.harness.report import format_table
from repro.kernel.vm import VirtualMemory
from repro.trace import OP_BLOCK, OP_BRANCH, OP_LOAD, TraceBufferStream
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import Cache
from repro.uarch.pipeline import Core
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher
from repro.uarch.tlb import Tlb, TlbHierarchy

_ROUNDS = 5


def _ns_per_op(fn, n_ops: int, rounds: int = _ROUNDS) -> float:
    """Best-of-N wall time of ``fn()`` (which performs ``n_ops`` ops)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - t0)
    return best / n_ops


# ---------------------------------------------------------------------------
# Structure probes.

def _probe_cache_hits() -> tuple[float, int]:
    cache = Cache("l1d", size_bytes=48 * 1024, ways=12)
    lines = [i * 64 for i in range(256)]         # fits: 768 lines capacity
    for addr in lines:
        cache.access(addr)
    n = 50_000
    idx = [lines[i % 256] for i in range(n)]

    def run():
        access = cache.access
        for addr in idx:
            access(addr)
    return _ns_per_op(run, n), n


def _probe_cache_miss_mix() -> tuple[float, int]:
    cache = Cache("l1d", size_bytes=48 * 1024, ways=12)
    n = 50_000
    rng = random.Random(0)
    # ~8x the capacity: a mix of hits, misses and evictions/writebacks.
    addrs = [rng.randrange(6144) * 64 for _ in range(n)]

    def run():
        access = cache.access
        fill = cache.fill
        for addr in addrs:
            if not access(addr, is_write=addr & 64 != 0):
                fill(addr, dirty=addr & 64 != 0)
    return _ns_per_op(run, n), n


def _probe_tlb() -> tuple[float, float, int]:
    n = 50_000
    hier = TlbHierarchy(Tlb("dtlb", entries=64, ways=4),
                        stlb=Tlb("stlb", entries=1536, ways=12))
    hot = [i << 12 for i in range(32)]
    for a in hot:
        hier.access(a)

    def run_hit():
        access = hier.access
        for i in range(n):
            access(hot[i % 32])
    hit_ns = _ns_per_op(run_hit, n)

    rng = random.Random(1)
    cold = [rng.randrange(1 << 20) << 12 for _ in range(n)]

    def run_walk():
        access = hier.access
        for a in cold:
            access(a)
    return hit_ns, _ns_per_op(run_walk, n), n


def _probe_branch() -> tuple[float, int]:
    n = 50_000
    bu = BranchUnit()
    rng = random.Random(2)
    pcs = [0x400000 + rng.randrange(512) * 4 for _ in range(n)]
    tgts = [pc + (64 if pc & 8 else -64) for pc in pcs]
    takens = [rng.random() < 0.6 for _ in range(n)]

    def run():
        resolve = bu.resolve
        for i in range(n):
            resolve(pcs[i], takens[i], tgts[i])
    return _ns_per_op(run, n), n


def _probe_prefetchers() -> tuple[float, float, int]:
    n = 50_000
    l1 = Cache("l1i", size_bytes=32 * 1024, ways=8)
    nlp = NextLinePrefetcher(l1)
    seq = [(i % 4096) * 64 for i in range(n)]

    def run_nlp():
        observe = nlp.observe
        for a in seq:
            observe(a)
    nlp_ns = _ns_per_op(run_nlp, n)

    l2 = Cache("l2", size_bytes=1 << 20, ways=16)
    spf = StreamPrefetcher(l2, degree=2)
    strided = [(i * 64) % (1 << 22) for i in range(n)]

    def run_spf():
        observe = spf.observe
        for a in strided:
            observe(a)
    return nlp_ns, _ns_per_op(run_spf, n), n


def test_micro_structure_costs(machine_i9, emit):
    cache_hit, n = _probe_cache_hits()
    cache_mix, _ = _probe_cache_miss_mix()
    tlb_hit, tlb_walk, _ = _probe_tlb()
    branch, _ = _probe_branch()
    nlp, spf, _ = _probe_prefetchers()
    probes = {
        "cache_hit_ns_per_op": cache_hit,
        "cache_miss_mix_ns_per_op": cache_mix,
        "tlb_hit_ns_per_op": tlb_hit,
        "tlb_walk_ns_per_op": tlb_walk,
        "branch_resolve_ns_per_op": branch,
        "nlp_observe_ns_per_op": nlp,
        "spf_observe_ns_per_op": spf,
    }
    rows = [[k[:-10], f"{v:8.1f}"] for k, v in probes.items()]
    _merge_json("micro", {"structures": {k: round(v, 2)
                                         for k, v in probes.items()},
                          "ops_per_probe": n},
                merge_section=True)
    emit("micro_structures",
         f"Per-structure steady-state cost (best of {_ROUNDS}, "
         f"{n:,} ops each):\n"
         + format_table(["probe", "ns/op"], rows))
    # Sanity floor, not a perf gate: every probe must have really run.
    assert all(v > 0 for v in probes.values())


# ---------------------------------------------------------------------------
# Engine CPI per op kind.

_N_OPS = 120_000


def _kind_ops(kind: str):
    rng = random.Random(3)
    if kind == "blocks":
        return [(OP_BLOCK, 0x400000 + (i % 512) * 64, 8, 48, False)
                for i in range(_N_OPS // 8)]
    if kind == "loads_hit":
        return [(OP_LOAD, 0x20000000 + (i % 128) * 64)
                for i in range(_N_OPS)]
    if kind == "loads_miss":
        return [(OP_LOAD, 0x20000000 + rng.randrange(1 << 26))
                for i in range(_N_OPS)]
    if kind == "branches":
        return [(OP_BRANCH, 0x400000 + (i % 512) * 4,
                 0x400000 + ((i * 7) % 512) * 4, i % 3 != 0)
                for i in range(_N_OPS)]
    raise KeyError(kind)


_KINDS = ("blocks", "loads_hit", "loads_miss", "branches")


def test_micro_engine_cpi(machine_i9, emit):
    from repro.uarch import native

    payload = {}
    rows = []
    for kind in _KINDS:
        ops = _kind_ops(kind)
        # Shared pre-decoded buffers: the vector runs measure the
        # engine (export + kernel + writeback), not trace decode.
        stream0 = TraceBufferStream(ops=iter(ops))
        bufs = []
        while True:
            buf = stream0.buffer()
            if buf is None:
                break
            bufs.append(buf)
            stream0.pos = len(buf.kinds)

        timing = {}
        state = {}
        for engine in ("legacy", "vector"):
            best = float("inf")
            for _ in range(_ROUNDS):
                core = Core(machine_i9, VirtualMemory())
                t0 = time.perf_counter_ns()
                if engine == "legacy":
                    n = core.consume(iter(ops))
                else:
                    n = core.consume_stream(
                        TraceBufferStream(buffers=iter(bufs)),
                        engine="vector")
                best = min(best, time.perf_counter_ns() - t0)
            timing[engine] = best / n
            state[engine] = (core.counts.instructions, core._ideal_cycles,
                             sum(core.stalls.values()))
        # Identity first, speed second.
        assert state["legacy"] == state["vector"], kind
        speedup = timing["legacy"] / timing["vector"]
        rows.append([kind, f"{timing['legacy']:8.1f}",
                     f"{timing['vector']:8.1f}", f"{speedup:.2f}x"])
        payload[kind] = {
            "legacy_ns_per_instr": round(timing["legacy"], 2),
            "vector_ns_per_instr": round(timing["vector"], 2),
            "vector_speedup": round(speedup, 3),
        }
    _merge_json("micro", {"ops": payload, "rounds": _ROUNDS},
                merge_section=True)
    emit("micro_engine_cpi",
         f"Simulator ns per instruction by op kind (best of {_ROUNDS}, "
         f"{_N_OPS:,} instructions):\n"
         + format_table(["op kind", "legacy ns/i", "vector ns/i",
                         "speedup"], rows))
    if native.available():
        # The native kernel must win on every op kind; the bound is far
        # below steady state (~10-40x) to tolerate noisy CI boxes.
        assert min(p["vector_speedup"] for p in payload.values()) > 2.0
