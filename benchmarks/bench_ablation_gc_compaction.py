"""Ablation: GC without compaction (mark-sweep).

DESIGN.md decision 1: the Fig 14 cache benefit must come from the
compaction mechanism, not an injected bonus.  With compaction disabled,
churned objects stay scattered forever: fragmentation grows without bound
and the dense-heap benefits disappear while the GC overhead remains.
"""

import itertools

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_workload
from repro.runtime.gc import GcConfig, SERVER
from repro.runtime.heap import HeapConfig
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import build_program

MB = 2 ** 20


def test_ablation_gc_compaction(benchmark, fidelity, machine_i9, emit):
    spec = next(s for s in dotnet_category_specs()
                if s.name == "System.Collections")
    gc = GcConfig(flavor=SERVER, max_heap_bytes=2_000 * MB)
    fid = Fidelity(warmup_instructions=100_000,
                   measure_instructions=max(300_000,
                                            fidelity.measure_instructions))

    def final_fragmentation(compaction: bool) -> float:
        prog = build_program(
            spec, seed=3,
            heap_config=HeapConfig(max_heap_bytes=gc.max_heap_bytes,
                                   gen0_budget_bytes=gc.gen0_budget()),
            gc_config=gc, compaction_enabled=compaction)
        for _ in itertools.islice(prog.ops(), 200_000):
            pass
        return prog.clr.live_set.fragmentation

    def run():
        runs = {}
        for compaction in (True, False):
            r = run_workload(spec, machine_i9, fid, seed=3, gc_config=gc,
                             compaction_enabled=compaction)
            runs[compaction] = r
        frags = {c: final_fragmentation(c) for c in (True, False)}
        return runs, frags

    (runs, frags) = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for compaction in (True, False):
        c = runs[compaction].counters
        rows.append(["compacting" if compaction else "mark-sweep",
                     c.gc_triggered, c.mpki(c.llc_misses),
                     c.mpki(c.l2_misses), c.mpki(c.dtlb_load_misses),
                     runs[compaction].seconds * 1e6,
                     frags[compaction]])
    text = format_table(
        ["GC mode", "GCs", "LLC MPKI", "L2 MPKI", "dTLB MPKI",
         "time (us)", "live-set fragmentation"], rows)
    emit("ablation_gc_compaction", text)

    # The mechanism: without compaction the live set's line density
    # degrades steadily (towards one object per line); compaction holds
    # it near the packed optimum.
    assert frags[False] > frags[True] + 0.05
    assert frags[True] < 1.1
    # Both modes pay comparable GC overhead (event counts similar).
    on, off = runs[True].counters, runs[False].counters
    assert abs(on.gc_triggered - off.gc_triggered) \
        <= max(3, on.gc_triggered // 2)
