"""Fig 14: workstation vs server GC across maximum heap sizes (§VII-B).

Paper: server GC triggers 6.18x more often, achieves a 0.59x LLC-MPKI
reduction, and runs applications 1.14x faster on average; cache-light
workloads (System.MathBenchmarks) regress; System.Collections cannot run
at the 200 MiB cap (and System.Text / System.Tests can't under server GC
at 200 MiB).
"""

import numpy as np

from repro import paperdata
from repro.harness.report import format_table, geomean
from repro.harness.runner import Fidelity, run_workload
from repro.runtime.gc import (GcConfig, OutOfManagedMemory, SERVER,
                              WORKSTATION)
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20
#: allocation-active categories (Fig 14 plots the whole suite; we sweep a
#: representative slice spanning heavy to negligible GC activity)
CATEGORIES = ("System.Collections", "System.Linq", "System.Text",
              "System.Xml", "System.Text.Json", "System.Runtime",
              "MicroBenchmarks.Serializers", "System.MathBenchmarks")


def test_fig14_gc_comparison(benchmark, fidelity, machine_i9, emit):
    specs = {s.name: s for s in dotnet_category_specs()}
    fid = Fidelity(warmup_instructions=fidelity.warmup_instructions,
                   measure_instructions=max(
                       300_000, fidelity.measure_instructions))

    def run():
        cells = {}
        for name in CATEGORIES:
            for flavor in (WORKSTATION, SERVER):
                for heap_mib in paperdata.GC_HEAP_SIZES_MIB:
                    key = (name, flavor, heap_mib)
                    try:
                        r = run_workload(
                            specs[name], machine_i9, fid, seed=3,
                            gc_config=GcConfig(flavor=flavor,
                                               max_heap_bytes=heap_mib
                                               * MB))
                        c = r.counters
                        cells[key] = dict(gc=c.gc_triggered,
                                          llc=c.mpki(c.llc_misses),
                                          l2=c.mpki(c.l2_misses),
                                          seconds=r.seconds)
                    except OutOfManagedMemory:
                        cells[key] = None
                    del key
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in CATEGORIES:
        for heap in paperdata.GC_HEAP_SIZES_MIB:
            ws = cells[(name, WORKSTATION, heap)]
            srv = cells[(name, SERVER, heap)]

            def f(cell, key):
                return "OOM" if cell is None else f"{cell[key]:.3g}"

            rows.append([name, heap, f(ws, "gc"), f(srv, "gc"),
                         f(ws, "llc"), f(srv, "llc"),
                         f(ws, "seconds"), f(srv, "seconds")])
    text = format_table(
        ["category", "heap MiB", "ws GCs", "srv GCs", "ws LLC", "srv LLC",
         "ws time", "srv time"], rows)

    # Aggregate factors over cells where both flavors ran and GC fired.
    trig, llc_r, speedups = [], [], {}
    for name in CATEGORIES:
        per_cat = []
        for heap in paperdata.GC_HEAP_SIZES_MIB:
            ws = cells[(name, WORKSTATION, heap)]
            srv = cells[(name, SERVER, heap)]
            if ws is None or srv is None:
                continue
            per_cat.append(ws["seconds"] / srv["seconds"])
            if ws["gc"] >= 1 and srv["gc"] >= 1:
                trig.append(srv["gc"] / ws["gc"])
                llc_r.append((srv["llc"] + 1e-3) / (ws["llc"] + 1e-3))
        if per_cat:
            speedups[name] = geomean(per_cat)
    trig_factor = geomean(trig)
    llc_factor = geomean(llc_r)
    mean_speedup = geomean([v for v in speedups.values()])
    text += "\n\n" + format_table(
        ["aggregate", "measured", "paper"],
        [["server/ws GC triggers", trig_factor,
          paperdata.SERVER_GC_TRIGGER_FACTOR],
         ["server/ws LLC MPKI", llc_factor,
          paperdata.SERVER_GC_LLC_MPKI_FACTOR],
         ["server speedup (geomean)", mean_speedup,
          paperdata.SERVER_GC_SPEEDUP]])
    text += "\n\nper-category server speedup:\n" + format_table(
        ["category", "speedup"],
        [[n, s] for n, s in speedups.items()])
    emit("fig14_gc_comparison", text)

    # --- Fig 14 shapes ------------------------------------------------
    assert trig_factor > 2.5                      # paper: 6.18x
    assert llc_factor < 1.0                       # paper: 0.59x
    assert mean_speedup > 1.0                     # paper: 1.14x
    # MathBenchmarks regresses relative to the suite (the crossover).
    assert speedups["System.MathBenchmarks"] < mean_speedup
    # §VII-B OOM pattern.
    assert cells[("System.Collections", WORKSTATION, 200)] is None
    assert cells[("System.Collections", SERVER, 200)] is None
    assert cells[("System.Text", SERVER, 200)] is None
    assert cells[("System.Text", WORKSTATION, 200)] is not None
    # Bigger heap -> fewer collections (both flavors).
    for flavor in (WORKSTATION, SERVER):
        small = cells[("System.Linq", flavor, 200)]["gc"]
        big = cells[("System.Linq", flavor, 20_000)]["gc"]
        assert small >= big
