"""Ablation: what if JITed code pages were reused in place?

DESIGN.md decision 1: the paper's cold-start findings must *emerge* from
the mechanism (fresh code pages on every JIT/tier event).  This ablation
flips the mechanism off — re-JIT lands at the method's previous address
(the paper's §VII-A1 proposal of "transformation of micro-architectural
state" taken to its limit) — and shows the I-side penalties shrink.
"""

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_workload
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

BENCHMARKS = ("CscBench", "Json", "MvcDbFortunesRaw")


def test_ablation_jit_code_page_reuse(benchmark, fidelity, machine_i9,
                                      emit):
    specs = {s.name: s for s in (dotnet_category_specs() + aspnet_specs())}
    fid = Fidelity(warmup_instructions=40_000,
                   measure_instructions=max(200_000,
                                            fidelity.measure_instructions))

    def run():
        out = {}
        for name in BENCHMARKS:
            normal = run_workload(specs[name], machine_i9, fid, seed=5)
            reuse = run_workload(specs[name], machine_i9, fid, seed=5,
                                 reuse_code_pages=True)
            out[name] = (normal.counters, reuse.counters)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (n, r) in data.items():
        rows.append([name,
                     n.mpki(n.l1i_misses), r.mpki(r.l1i_misses),
                     n.mpki(n.itlb_misses), r.mpki(r.itlb_misses),
                     n.mpki(n.branch_misses), r.mpki(r.branch_misses),
                     float(n.page_faults), float(r.page_faults)])
    text = format_table(
        ["benchmark", "l1i", "l1i(reuse)", "itlb", "itlb(reuse)",
         "br", "br(reuse)", "faults", "faults(reuse)"], rows)
    text += ("\n\nWith code-page reuse, re-JIT keeps PC-indexed state "
             "warm: the cold-start penalties the paper attributes to "
             "fresh code pages shrink or vanish.")
    emit("ablation_jit_code_reuse", text)

    improved = 0
    for name, (n, r) in data.items():
        assert float(r.page_faults) <= float(n.page_faults), name
        if (r.mpki(r.l1i_misses) < n.mpki(n.l1i_misses)
                or r.mpki(r.itlb_misses) <= n.mpki(n.itlb_misses)):
            improved += 1
    assert improved >= 2
