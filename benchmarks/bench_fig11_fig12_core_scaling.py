"""Figs 11-12: ASP.NET Top-Down profile vs core count (1, 2, 4, 8, 16).

Paper: as cores scale, benchmarks become more backend bound, driven by
growing L3-bound stalls (LLC slice-port and NoC contention), while the
per-core LLC MPKI stays roughly flat.

Since the multicore round loop is nativized (persistent per-core kernel
images sharing one LLC image), the sweep runs on every available engine
and asserts they agree exactly; the companion throughput bench times
batched vs vector against a warm trace store and writes the
``multicore`` section of ``BENCH_throughput.json`` (gated in CI via
``compare_throughput.py --sections ... --gate-suffix speedup``).
"""

import time

from bench_simulator_throughput import _merge_json, JSON_PATH

from repro import paperdata
from repro.exec.traces import TraceStore
from repro.harness.report import format_table
from repro.harness.runner import run_multicore
from repro.uarch import native
from repro.workloads.aspnet import aspnet_specs

BENCHMARKS = ("Plaintext", "Json", "DbFortunesRaw")

#: core counts the throughput bench times (the CI equivalence matrix)
_THROUGHPUT_COUNTS = (1, 2, 4, 8)
_ROUNDS = 3


def _engines():
    return ("batched", "vector") if native.available() else ("batched",)


def test_fig11_fig12_core_scaling(benchmark, fidelity, machine_i9, emit):
    specs = {s.name: s for s in aspnet_specs()}
    engines = _engines()

    def run():
        out = {}
        for name in BENCHMARKS:
            per_engine = {}
            for engine in engines:
                per_count = {}
                for n in paperdata.CORE_SCALING_POINTS:
                    result, td, counters = run_multicore(
                        specs[name], machine_i9, n, fidelity,
                        engine=engine)
                    per_count[n] = {
                        "topdown": td.level1(),
                        "l3_bound": td.be_l3_bound,
                        "llc_mpki": result.per_core_llc_mpki(),
                        "llc_extra_latency": result.llc.extra_latency,
                    }
                per_engine[engine] = per_count
            out[name] = per_engine
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, per_engine in data.items():
        for engine, per_count in per_engine.items():
            for n, d in per_count.items():
                td = d["topdown"]
                rows.append([name, engine, n, td["retiring"],
                             td["frontend_bound"], td["backend_bound"],
                             d["l3_bound"], d["llc_mpki"],
                             d["llc_extra_latency"]])
    text = format_table(
        ["benchmark", "engine", "cores", "retiring", "fe_bound",
         "be_bound", "l3_bound", "per-core LLC MPKI",
         "LLC extra latency (cyc)"],
        rows)
    emit("fig11_fig12_core_scaling", text)

    for name, per_engine in data.items():
        # Engine agreement: the native round loop is the same model.
        assert all(per_engine[e] == per_engine[engines[0]]
                   for e in engines), name
        per_count = per_engine[engines[0]]
        lo, mid, hi = per_count[1], per_count[4], per_count[16]
        # Fig 12: L3-bound stalls grow with core count...
        assert hi["l3_bound"] > lo["l3_bound"] * 1.3, name
        # ...while per-core LLC MPKI stays comparatively stable across
        # the multi-core points (2..16: shared-state amortization makes
        # the 1-core point an outlier in finite windows).
        multi = [per_count[n]["llc_mpki"] for n in (2, 4, 8, 16)]
        assert max(multi) < 2.5 * min(multi), (name, multi)
        # Fig 11: backend-bound grows as contention mounts (4 -> 16).
        assert hi["topdown"]["backend_bound"] \
            > mid["topdown"]["backend_bound"] - 0.01, name
        # The mechanism: contention latency at the shared LLC.
        assert hi["llc_extra_latency"] > 2 * lo["llc_extra_latency"]


def test_multicore_engine_throughput(fidelity, machine_i9, emit,
                                     tmp_path):
    """Batched vs native round loop on the core-scaling sweep.

    Both engines replay the same warm per-core trace store (generation
    is paid once per trace regardless of engine), interleaved round by
    round so system noise penalizes both alike.  Every timed pair must
    agree exactly before its ratio means anything.
    """
    if not native.available():
        import pytest
        pytest.skip("native kernel unavailable")
    spec = next(s for s in aspnet_specs() if s.name == "Json")
    store = TraceStore(tmp_path / "traces")

    def timed(n, engine, **kw):
        t0 = time.process_time()
        result, td, counters = run_multicore(
            spec, machine_i9, n, fidelity, engine=engine,
            trace_store=store, **kw)
        dt = time.process_time() - t0
        return dt, (result.total_instructions, result.epochs,
                    result.llc.cache._rand_state, td, counters,
                    repr(None if result.samples is None
                         else result.samples.columns))

    rows = []
    section = {
        "workload": spec.name,
        "machine": machine_i9.name,
        "fidelity": {
            "warmup_instructions": fidelity.warmup_instructions,
            "measure_instructions": fidelity.measure_instructions,
        },
        "rounds": _ROUNDS,
        "core_counts": {},
    }
    for n in _THROUGHPUT_COUNTS:
        timed(n, "batched")            # warm the store + page cache
        t_bat = t_vec = float("inf")
        fp_bat = fp_vec = None
        for _ in range(_ROUNDS):
            dt, fp = timed(n, "batched")
            if dt < t_bat:
                t_bat, fp_bat = dt, fp
            dt, fp = timed(n, "vector")
            if dt < t_vec:
                t_vec, fp_vec = dt, fp
        assert fp_bat == fp_vec, f"engines diverged at {n} cores"
        instr = fp_bat[0]
        speedup = t_bat / t_vec
        rows.append([n, f"{instr / t_bat:,.0f}", f"{instr / t_vec:,.0f}",
                     f"{speedup:.2f}x"])
        section["core_counts"][str(n)] = {
            "batched_instr_per_s": round(instr / t_bat),
            "vector_instr_per_s": round(instr / t_vec),
            "speedup": round(speedup, 3),
        }
    section["min_speedup"] = min(d["speedup"]
                                 for d in section["core_counts"].values())

    # Sampler on: the trampoline must not eat the win (Fig 8/13 runs).
    t_bat = t_vec = float("inf")
    fp_bat = fp_vec = None
    for _ in range(_ROUNDS):
        dt, fp = timed(4, "batched", sampling=True)
        if dt < t_bat:
            t_bat, fp_bat = dt, fp
        dt, fp = timed(4, "vector", sampling=True)
        if dt < t_vec:
            t_vec, fp_vec = dt, fp
    assert fp_bat == fp_vec, "engines diverged with sampler"
    instr = fp_bat[0]
    section["sampler"] = {
        "cores": 4,
        "batched_instr_per_s": round(instr / t_bat),
        "vector_instr_per_s": round(instr / t_vec),
        "speedup": round(t_bat / t_vec, 3),
    }
    rows.append(["4+sampler", f"{instr / t_bat:,.0f}",
                 f"{instr / t_vec:,.0f}", f"{t_bat / t_vec:.2f}x"])
    _merge_json("multicore", section)

    emit("multicore_engine_throughput",
         f"Multicore round loop ({spec.name}, warm per-core traces, "
         f"best of {_ROUNDS}):\n"
         + format_table(["cores", "batched instr/s", "vector instr/s",
                         "speedup"], rows)
         + f"\nJSON written to {JSON_PATH.name}")

    # The committed default-fidelity numbers target >=5x; this inline
    # bound is looser because quick fidelity amortizes the per-session
    # image export over ~5x fewer instructions and CI boxes are noisy.
    floor = 3.0 if fidelity.measure_instructions >= 100_000 else 1.3
    assert section["min_speedup"] > floor
    assert section["sampler"]["speedup"] > floor * 0.6
