"""Figs 11-12: ASP.NET Top-Down profile vs core count (1, 2, 4, 8, 16).

Paper: as cores scale, benchmarks become more backend bound, driven by
growing L3-bound stalls (LLC slice-port and NoC contention), while the
per-core LLC MPKI stays roughly flat.
"""

from repro import paperdata
from repro.harness.report import format_table
from repro.harness.runner import run_multicore
from repro.workloads.aspnet import aspnet_specs

BENCHMARKS = ("Plaintext", "Json", "DbFortunesRaw")


def test_fig11_fig12_core_scaling(benchmark, fidelity, machine_i9, emit):
    specs = {s.name: s for s in aspnet_specs()}

    def run():
        out = {}
        for name in BENCHMARKS:
            per_count = {}
            for n in paperdata.CORE_SCALING_POINTS:
                result, td, counters = run_multicore(
                    specs[name], machine_i9, n, fidelity)
                per_count[n] = {
                    "topdown": td.level1(),
                    "l3_bound": td.be_l3_bound,
                    "llc_mpki": result.per_core_llc_mpki(),
                    "llc_extra_latency": result.llc.extra_latency,
                }
            out[name] = per_count
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, per_count in data.items():
        for n, d in per_count.items():
            td = d["topdown"]
            rows.append([name, n, td["retiring"], td["frontend_bound"],
                         td["backend_bound"], d["l3_bound"],
                         d["llc_mpki"], d["llc_extra_latency"]])
    text = format_table(
        ["benchmark", "cores", "retiring", "fe_bound", "be_bound",
         "l3_bound", "per-core LLC MPKI", "LLC extra latency (cyc)"],
        rows)
    emit("fig11_fig12_core_scaling", text)

    for name, per_count in data.items():
        lo, mid, hi = per_count[1], per_count[4], per_count[16]
        # Fig 12: L3-bound stalls grow with core count...
        assert hi["l3_bound"] > lo["l3_bound"] * 1.3, name
        # ...while per-core LLC MPKI stays comparatively stable across
        # the multi-core points (2..16: shared-state amortization makes
        # the 1-core point an outlier in finite windows).
        multi = [per_count[n]["llc_mpki"] for n in (2, 4, 8, 16)]
        assert max(multi) < 2.5 * min(multi), (name, multi)
        # Fig 11: backend-bound grows as contention mounts (4 -> 16).
        assert hi["topdown"]["backend_bound"] \
            > mid["topdown"]["backend_bound"] - 0.01, name
        # The mechanism: contention latency at the shared LLC.
        assert hi["llc_extra_latency"] > 2 * lo["llc_extra_latency"]
